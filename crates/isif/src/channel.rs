//! One configurable analog input channel (paper Fig. 4).
//!
//! "The readout stage is composed by an operational amplifier that can be
//! programmed to implement a charge amplifier, a trans-resistive stage or an
//! instrument amplifier … Further stages perform … low-pass filtering for
//! anti-aliasing purpose. Eventually the signal is converted by a 16 bits
//! Sigma Delta ADC."
//!
//! The channel couples those AFE blocks with the first digital stage (the
//! CIC decimator) so callers push analog samples at the modulator rate and
//! receive signed 16-bit words at the control rate.

use crate::IsifError;
use hotwire_afe::adc::SigmaDeltaModulator;
use hotwire_afe::filter::AntiAliasFilter;
use hotwire_afe::inamp::{InAmpConfig, InstrumentationAmp};
use hotwire_dsp::cic::CicDecimator;
use hotwire_units::{Amps, Hertz, Volts};
use rand::Rng;

/// The programmable readout mode of the channel's input stage.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ReadoutMode {
    /// Differential instrumentation amplifier (the MAF bridge readout).
    Instrumentation,
    /// Trans-resistive stage: input current × feedback resistance.
    TransResistive {
        /// Feedback resistance (V/A).
        feedback_ohms: f64,
    },
    /// Charge amplifier: integrates input charge onto a feedback capacitor.
    ChargeAmp {
        /// Feedback capacitance in farads.
        feedback_farads: f64,
    },
}

/// The analog sample a channel accepts, depending on its readout mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnalogInput {
    /// A differential voltage (instrumentation mode).
    Differential(Volts),
    /// An input current (trans-resistive mode).
    Current(Amps),
    /// An input charge slug in coulombs (charge-amp mode).
    Charge(f64),
}

/// Static channel configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Input-stage mode.
    pub mode: ReadoutMode,
    /// Instrumentation-amplifier parameters (gain, offset, noise, …).
    pub inamp: InAmpConfig,
    /// Anti-alias corner.
    pub antialias_corner: Hertz,
    /// ΣΔ reference (full scale ±vref).
    pub vref: Volts,
    /// CIC order for the decimation chain.
    pub cic_order: usize,
    /// Decimation ratio modulator-rate → control-rate.
    pub decimation: u32,
}

impl ChannelConfig {
    /// The MAF-bridge channel: instrumentation mode, ISIF default in-amp,
    /// 30 kHz anti-alias, ±2.5 V, CIC³, decimate by 256.
    pub fn maf_bridge() -> Self {
        ChannelConfig {
            mode: ReadoutMode::Instrumentation,
            inamp: InAmpConfig::isif_default(),
            antialias_corner: Hertz::from_kilohertz(30.0),
            vref: Volts::new(2.5),
            cic_order: 3,
            decimation: 256,
        }
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig::maf_bridge()
    }
}

/// A complete input channel: readout stage → anti-alias → ΣΔ → CIC.
#[derive(Debug)]
pub struct InputChannel {
    config: ChannelConfig,
    inamp: InstrumentationAmp,
    antialias: AntiAliasFilter,
    modulator: SigmaDeltaModulator,
    cic: CicDecimator,
    /// Charge-amp integrator state (coulombs on the feedback cap).
    charge_state: f64,
    /// Scale factor turning the CIC's raw output into a signed 16-bit word.
    norm_shift: u32,
    /// Reusable buffer for the CIC's raw block outputs (no per-frame
    /// allocation on the block path).
    cic_scratch: Vec<i64>,
}

impl InputChannel {
    /// Builds a channel stepped at `modulator_rate`.
    ///
    /// # Errors
    ///
    /// Returns [`IsifError::Config`] if any sub-block rejects its
    /// parameters.
    pub fn new(config: ChannelConfig, modulator_rate: Hertz) -> Result<Self, IsifError> {
        let inamp = InstrumentationAmp::new(config.inamp, modulator_rate)?;
        let antialias = AntiAliasFilter::new(config.antialias_corner, modulator_rate)?;
        let modulator = SigmaDeltaModulator::new(config.vref)?;
        let cic = CicDecimator::new(config.cic_order, config.decimation)?;
        // CIC gain is R^N for a ±1 input; map full scale to ±2^15.
        let gain_bits = (cic.gain() as f64).log2().ceil() as u32;
        let norm_shift = gain_bits.saturating_sub(15);
        Ok(InputChannel {
            config,
            inamp,
            antialias,
            modulator,
            cic,
            charge_state: 0.0,
            norm_shift,
            cic_scratch: Vec::new(),
        })
    }

    /// The active configuration.
    #[inline]
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// Control-rate sample period in modulator ticks.
    #[inline]
    pub fn decimation(&self) -> u32 {
        self.config.decimation
    }

    /// Converts an analog input to the in-amp's differential voltage
    /// according to the readout mode.
    fn front_end(&mut self, input: AnalogInput) -> Volts {
        match (self.config.mode, input) {
            (ReadoutMode::Instrumentation, AnalogInput::Differential(v)) => v,
            (ReadoutMode::TransResistive { feedback_ohms }, AnalogInput::Current(i)) => {
                Volts::new(i.get() * feedback_ohms)
            }
            (ReadoutMode::ChargeAmp { feedback_farads }, AnalogInput::Charge(q)) => {
                // Leaky integration of charge onto the feedback cap.
                self.charge_state = self.charge_state * 0.9999 + q;
                Volts::new(self.charge_state / feedback_farads)
            }
            // Mode/input mismatch: the mux simply reads zero (the silicon
            // would read a floating node; zero is the benign model).
            _ => Volts::ZERO,
        }
    }

    /// Pushes one modulator-rate analog sample; returns a signed 16-bit word
    /// every `decimation` samples.
    ///
    /// `chip_overtemp_k` models platform self-heating (drives in-amp offset
    /// drift); the RNG feeds the noise sources.
    pub fn sample<R: Rng + ?Sized>(
        &mut self,
        input: AnalogInput,
        chip_overtemp_k: f64,
        rng: &mut R,
    ) -> Option<i32> {
        let v_diff = self.front_end(input);
        let amplified = self.inamp.amplify(v_diff, chip_overtemp_k, rng);
        let filtered = self.antialias.push(amplified);
        let bit = self.modulator.push(filtered);
        self.cic
            .push(bit)
            .map(|raw| ((raw >> self.norm_shift) as i32).clamp(-32768, 32767))
    }

    /// Draws the per-tick input-referred noise sample for this channel —
    /// exactly the RNG draws [`sample`](Self::sample) makes internally
    /// (white then flicker), split out so a frame caller can pre-draw noise
    /// lanes in the scalar draw order before running the block kernels.
    pub fn draw_noise<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.inamp.draw_noise(rng)
    }

    /// Pushes a block of instrumentation-mode differential samples through
    /// the full chain (in-amp → anti-alias → ΣΔ → CIC), appending every
    /// decimated 16-bit word produced to `out`.
    ///
    /// `diffs` holds the differential inputs in volts; `noises` holds one
    /// pre-drawn [`draw_noise`](Self::draw_noise) value per tick; `bits` is
    /// scratch for the modulator bitstream. The three analog stages run as
    /// one fused register-hoisted pass
    /// ([`hotwire_afe::chain::amplify_filter_modulate_block`]), then the
    /// CIC walks the bitstream. Bit-identical to the equivalent sequence
    /// of scalar `sample(AnalogInput::Differential(..))` calls whose noise
    /// was drawn in the same RNG order.
    ///
    /// # Panics
    ///
    /// Panics if the channel is not in instrumentation mode or the slice
    /// lengths disagree.
    pub fn sample_block(
        &mut self,
        diffs: &[f64],
        noises: &[f64],
        bits: &mut [i32],
        chip_overtemp_k: f64,
        out: &mut Vec<i32>,
    ) {
        assert!(
            matches!(self.config.mode, ReadoutMode::Instrumentation),
            "sample_block supports instrumentation mode only"
        );
        hotwire_afe::chain::amplify_filter_modulate_block(
            &mut self.inamp,
            &mut self.antialias,
            &mut self.modulator,
            diffs,
            noises,
            chip_overtemp_k,
            bits,
        );
        self.cic_scratch.clear();
        self.cic.push_block(bits, &mut self.cic_scratch);
        let shift = self.norm_shift;
        out.extend(
            self.cic_scratch
                .iter()
                .map(|&raw| ((raw >> shift) as i32).clamp(-32768, 32767)),
        );
    }

    /// The signed 16-bit word the full chain settles to for a quasi-static
    /// differential input — the fast-AFE tier's one-call-per-frame stand-in
    /// for `decimation` scalar [`sample`](Self::sample) calls.
    ///
    /// Draws one noise sample (so consecutive codes stay dithered and the
    /// frozen-code watchdog discriminator keeps seeing a live input) and
    /// maps the in-amp's DC transfer through the modulator's stable input
    /// range and the CIC's DC gain. Filter poles and integrators are not
    /// advanced: this tier trades transient response for speed, with the
    /// steady-state error pinned by tests.
    pub fn dc_code<R: Rng + ?Sized>(
        &mut self,
        v_diff: Volts,
        chip_overtemp_k: f64,
        rng: &mut R,
    ) -> i32 {
        let noise = self.inamp.draw_noise(rng);
        let v = self.inamp.dc_output(v_diff, chip_overtemp_k, noise);
        let u = (v.get() / self.config.vref.get()).clamp(-0.9, 0.9);
        let raw = ((u * self.cic.gain() as f64).round() as i64) >> self.norm_shift;
        raw.clamp(-32768, 32767) as i32
    }

    /// Full-scale positive output code (≈ +2¹⁵).
    pub fn full_scale(&self) -> i32 {
        32767
    }

    /// Volts-per-LSB at the channel output, referred to the in-amp *input*.
    pub fn input_referred_lsb(&self) -> Volts {
        // Full scale at the modulator is ±vref; one LSB is vref/2^15, divided
        // by the in-amp gain to refer it to the bridge.
        Volts::new(self.config.vref.get() / 32768.0 / self.config.inamp.gain)
    }

    /// Resets all analog and digital state.
    pub fn reset(&mut self) {
        self.inamp.reset();
        self.antialias.reset();
        self.modulator.reset();
        self.cic.reset();
        self.charge_state = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xC0FFEE)
    }

    fn quiet_channel() -> InputChannel {
        let config = ChannelConfig {
            inamp: InAmpConfig {
                gain_error: 0.0,
                input_offset: Volts::ZERO,
                offset_drift_per_k: 0.0,
                noise_density: 0.0,
                flicker_rms: Volts::ZERO,
                ..InAmpConfig::isif_default()
            },
            ..ChannelConfig::maf_bridge()
        };
        InputChannel::new(config, Hertz::from_kilohertz(256.0)).unwrap()
    }

    fn run_dc(chan: &mut InputChannel, v: f64, outputs: usize) -> Vec<i32> {
        let mut r = rng();
        let mut out = Vec::new();
        while out.len() < outputs {
            if let Some(y) = chan.sample(AnalogInput::Differential(Volts::new(v)), 0.0, &mut r) {
                out.push(y);
            }
        }
        out
    }

    #[test]
    fn dc_conversion_scales_correctly() {
        let mut chan = quiet_channel();
        // 10 mV at the bridge × gain 50 = 0.5 V at the ADC = 0.2 FS → code
        // ≈ 0.2·32768 ≈ 6554.
        let out = run_dc(&mut chan, 10e-3, 40);
        let settled = out[20..].iter().map(|&x| x as f64).sum::<f64>() / 20.0;
        assert!(
            (settled - 6554.0).abs() < 40.0,
            "code {settled} expected ≈ 6554"
        );
    }

    #[test]
    fn polarity_preserved() {
        let mut chan = quiet_channel();
        let out = run_dc(&mut chan, -10e-3, 40);
        assert!(out[30] < -6000, "negative input gave {}", out[30]);
    }

    #[test]
    fn output_cadence_matches_decimation() {
        let mut chan = quiet_channel();
        let mut r = rng();
        let mut count = 0;
        for _ in 0..256 * 10 {
            if chan
                .sample(AnalogInput::Differential(Volts::ZERO), 0.0, &mut r)
                .is_some()
            {
                count += 1;
            }
        }
        assert_eq!(count, 10);
    }

    #[test]
    fn noise_floor_is_realistic_for_16_bits() {
        // With the real ISIF noise config, the settled code's std-dev should
        // sit in the range of a real 16-bit channel: more than nothing, less
        // than 8 LSBs.
        let mut chan =
            InputChannel::new(ChannelConfig::maf_bridge(), Hertz::from_kilohertz(256.0)).unwrap();
        let mut r = rng();
        let mut out = Vec::new();
        while out.len() < 400 {
            if let Some(y) = chan.sample(AnalogInput::Differential(Volts::new(5e-3)), 0.0, &mut r) {
                out.push(y as f64);
            }
        }
        let settled = &out[100..];
        let mean = settled.iter().sum::<f64>() / settled.len() as f64;
        let var = settled.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / settled.len() as f64;
        let sd = var.sqrt();
        assert!(sd > 0.05, "noise floor {sd} LSB suspiciously clean");
        assert!(sd < 8.0, "noise floor {sd} LSB too dirty for 16 bits");
    }

    #[test]
    fn trans_resistive_mode() {
        let config = ChannelConfig {
            mode: ReadoutMode::TransResistive {
                feedback_ohms: 10_000.0,
            },
            inamp: InAmpConfig {
                gain: 1.0,
                gain_error: 0.0,
                input_offset: Volts::ZERO,
                offset_drift_per_k: 0.0,
                noise_density: 0.0,
                flicker_rms: Volts::ZERO,
                ..InAmpConfig::isif_default()
            },
            ..ChannelConfig::maf_bridge()
        };
        let mut chan = InputChannel::new(config, Hertz::from_kilohertz(256.0)).unwrap();
        let mut r = rng();
        let mut out = Vec::new();
        while out.len() < 40 {
            // 100 µA × 10 kΩ = 1 V = 0.4 FS → ≈ 13107.
            if let Some(y) = chan.sample(AnalogInput::Current(Amps::new(100e-6)), 0.0, &mut r) {
                out.push(y);
            }
        }
        assert!((out[30] - 13107).abs() < 80, "code {}", out[30]);
    }

    #[test]
    fn charge_amp_mode_integrates_charge() {
        let config = ChannelConfig {
            mode: ReadoutMode::ChargeAmp {
                feedback_farads: 100e-12,
            },
            inamp: InAmpConfig {
                gain: 1.0,
                gain_error: 0.0,
                input_offset: Volts::ZERO,
                offset_drift_per_k: 0.0,
                noise_density: 0.0,
                flicker_rms: Volts::ZERO,
                ..InAmpConfig::isif_default()
            },
            ..ChannelConfig::maf_bridge()
        };
        let mut chan = InputChannel::new(config, Hertz::from_kilohertz(256.0)).unwrap();
        let mut r = rng();
        // One 50 pC slug, then nothing: the feedback cap holds ~0.5 V and
        // leaks slowly (0.01 %/sample leak), so codes settle near
        // 0.5/2.5·32768 ≈ 6554 and decay.
        let mut first = None;
        let mut later = None;
        for i in 0..256 * 60 {
            let q = if i == 0 { 50e-12 } else { 0.0 };
            if let Some(y) = chan.sample(AnalogInput::Charge(q), 0.0, &mut r) {
                if first.is_none() && i > 256 * 10 {
                    first = Some(y);
                }
                later = Some(y);
            }
        }
        let (first, later) = (first.unwrap(), later.unwrap());
        assert!((3000..8000).contains(&first), "charge code {first}");
        assert!(
            later < first,
            "leak must decay the held charge: {first} → {later}"
        );
    }

    #[test]
    fn mode_mismatch_reads_zero() {
        let mut chan = quiet_channel(); // instrumentation mode
        let mut r = rng();
        let mut out = Vec::new();
        while out.len() < 20 {
            if let Some(y) = chan.sample(AnalogInput::Current(Amps::new(1.0)), 0.0, &mut r) {
                out.push(y);
            }
        }
        assert!(out[15].abs() < 4, "mismatched input leaked {}", out[15]);
    }

    #[test]
    fn input_referred_lsb_magnitude() {
        let chan = quiet_channel();
        // 2.5 V / 32768 / 50 ≈ 1.53 µV per LSB at the bridge.
        let lsb = chan.input_referred_lsb();
        assert!((lsb.get() - 1.526e-6).abs() < 0.01e-6, "lsb {lsb}");
    }

    #[test]
    fn reset_clears_pipeline() {
        let mut chan = quiet_channel();
        run_dc(&mut chan, 20e-3, 10);
        chan.reset();
        let out = run_dc(&mut chan, 0.0, 20);
        assert!(out[15].abs() < 4, "stale state after reset: {}", out[15]);
    }
}
