//! SPI master — one of ISIF's "standard IPs … SPIs (Serial Peripheral
//! Interface)" — plus a 25xx-series EEPROM device model to talk to.
//!
//! The behavioural model is transaction-level: a full-duplex byte exchange
//! per clock-out, explicit chip-select framing, and a transfer-time account
//! so power/latency budgets can include bus traffic.

use crate::IsifError;
use hotwire_units::{Hertz, Seconds};

/// A device on the SPI bus: exchanges one byte per transfer and observes its
/// chip select.
pub trait SpiDevice {
    /// Full-duplex exchange: the device receives `mosi` and returns MISO.
    fn transfer(&mut self, mosi: u8) -> u8;

    /// Chip-select edge. `active = true` starts a transaction, `false` ends
    /// it (devices latch commands on deselect).
    fn select(&mut self, active: bool);
}

/// The SPI master peripheral.
#[derive(Debug, Clone)]
pub struct SpiMaster {
    clock: Hertz,
    bytes_transferred: u64,
    transactions: u64,
}

impl SpiMaster {
    /// Creates a master with the given SCK frequency.
    ///
    /// # Errors
    ///
    /// Returns [`IsifError::Config`] for a non-positive clock.
    pub fn new(clock: Hertz) -> Result<Self, IsifError> {
        if clock.get() <= 0.0 {
            return Err(IsifError::Config {
                reason: "spi clock must be positive".into(),
            });
        }
        Ok(SpiMaster {
            clock,
            bytes_transferred: 0,
            transactions: 0,
        })
    }

    /// Runs one chip-select-framed transaction: sends `tx`, returns the MISO
    /// bytes clocked back.
    pub fn transaction<D: SpiDevice + ?Sized>(&mut self, device: &mut D, tx: &[u8]) -> Vec<u8> {
        device.select(true);
        let rx = tx.iter().map(|&b| device.transfer(b)).collect();
        device.select(false);
        self.bytes_transferred += tx.len() as u64;
        self.transactions += 1;
        rx
    }

    /// Wall time a transaction of `bytes` occupies on the bus.
    pub fn transfer_time(&self, bytes: usize) -> Seconds {
        Seconds::new(bytes as f64 * 8.0 / self.clock.get())
    }

    /// Total bytes moved since creation.
    #[inline]
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Total chip-select-framed transactions since creation.
    #[inline]
    pub fn transactions(&self) -> u64 {
        self.transactions
    }
}

/// Command opcodes of the 25xx SPI-EEPROM family.
mod opcode {
    /// Read data.
    pub const READ: u8 = 0x03;
    /// Write data (requires a prior WREN).
    pub const WRITE: u8 = 0x02;
    /// Set the write-enable latch.
    pub const WREN: u8 = 0x06;
    /// Clear the write-enable latch.
    pub const WRDI: u8 = 0x04;
    /// Read the status register.
    pub const RDSR: u8 = 0x05;
}

/// Transaction decoder state of the EEPROM model.
#[derive(Debug, Clone, Default)]
enum EepromState {
    #[default]
    Idle,
    Opcode(u8),
    AddressHigh(u8),
    Reading(usize),
    Writing {
        page_base: usize,
        offset: usize,
    },
    Status,
}

/// A 25xx-style SPI EEPROM: 4 KiB, 32-byte pages, write-enable latch,
/// page-wrap on writes — the external calibration/log store a §7 probe
/// would carry next to the ASIC.
#[derive(Debug, Clone)]
pub struct SpiEeprom {
    memory: Vec<u8>,
    page_size: usize,
    state: EepromState,
    /// High address byte of the in-flight command.
    addr_high: u8,
    write_enabled: bool,
    write_cycles: u64,
}

impl SpiEeprom {
    /// A blank 4 KiB part with 32-byte pages.
    pub fn new_4k() -> Self {
        SpiEeprom {
            memory: vec![0xFF; 4096],
            page_size: 32,
            state: EepromState::Idle,
            addr_high: 0,
            write_enabled: false,
            write_cycles: 0,
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.memory.len()
    }

    /// Completed write transactions (endurance bookkeeping).
    #[inline]
    pub fn write_cycles(&self) -> u64 {
        self.write_cycles
    }

    /// Direct (test) access to a byte.
    pub fn peek(&self, address: usize) -> Option<u8> {
        self.memory.get(address).copied()
    }
}

impl SpiDevice for SpiEeprom {
    fn transfer(&mut self, mosi: u8) -> u8 {
        match std::mem::take(&mut self.state) {
            EepromState::Idle => {
                match mosi {
                    opcode::READ | opcode::WRITE => self.state = EepromState::Opcode(mosi),
                    opcode::WREN => {
                        self.write_enabled = true;
                        self.state = EepromState::Idle;
                    }
                    opcode::WRDI => {
                        self.write_enabled = false;
                        self.state = EepromState::Idle;
                    }
                    opcode::RDSR => self.state = EepromState::Status,
                    _ => self.state = EepromState::Idle,
                }
                0xFF
            }
            EepromState::Opcode(op) => {
                self.addr_high = mosi;
                self.state = EepromState::AddressHigh(op);
                0xFF
            }
            EepromState::AddressHigh(op) => {
                let address = ((self.addr_high as usize) << 8 | mosi as usize) % self.memory.len();
                self.state = match op {
                    opcode::READ => EepromState::Reading(address),
                    _ if self.write_enabled => EepromState::Writing {
                        page_base: address - (address % self.page_size),
                        offset: address % self.page_size,
                    },
                    _ => EepromState::Idle, // write without WREN: ignored
                };
                0xFF
            }
            EepromState::Reading(address) => {
                let value = self.memory[address];
                self.state = EepromState::Reading((address + 1) % self.memory.len());
                value
            }
            EepromState::Writing { page_base, offset } => {
                self.memory[page_base + offset] = mosi;
                // Writes wrap within the page, as real 25xx parts do.
                self.state = EepromState::Writing {
                    page_base,
                    offset: (offset + 1) % self.page_size,
                };
                0xFF
            }
            EepromState::Status => {
                self.state = EepromState::Idle;
                u8::from(self.write_enabled) << 1
            }
        }
    }

    fn select(&mut self, active: bool) {
        if !active {
            // Deselect latches a completed write and clears WREN.
            if matches!(self.state, EepromState::Writing { .. }) {
                self.write_cycles += 1;
                self.write_enabled = false;
            }
            self.state = EepromState::Idle;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> (SpiMaster, SpiEeprom) {
        (
            SpiMaster::new(Hertz::from_megahertz(1.0)).unwrap(),
            SpiEeprom::new_4k(),
        )
    }

    fn write(master: &mut SpiMaster, dev: &mut SpiEeprom, addr: u16, data: &[u8]) {
        master.transaction(dev, &[opcode::WREN]);
        let mut tx = vec![opcode::WRITE, (addr >> 8) as u8, addr as u8];
        tx.extend_from_slice(data);
        master.transaction(dev, &tx);
    }

    fn read(master: &mut SpiMaster, dev: &mut SpiEeprom, addr: u16, len: usize) -> Vec<u8> {
        let mut tx = vec![opcode::READ, (addr >> 8) as u8, addr as u8];
        tx.extend(std::iter::repeat(0).take(len));
        master.transaction(dev, &tx)[3..].to_vec()
    }

    #[test]
    fn write_then_read_round_trip() {
        let (mut m, mut e) = bus();
        write(&mut m, &mut e, 0x0100, b"king a/b/n");
        assert_eq!(read(&mut m, &mut e, 0x0100, 10), b"king a/b/n");
        assert_eq!(e.write_cycles(), 1);
    }

    #[test]
    fn write_without_wren_is_ignored() {
        let (mut m, mut e) = bus();
        let mut tx = vec![opcode::WRITE, 0x00, 0x10];
        tx.extend_from_slice(b"sneaky");
        m.transaction(&mut e, &tx);
        assert_eq!(read(&mut m, &mut e, 0x0010, 6), vec![0xFF; 6]);
        assert_eq!(e.write_cycles(), 0);
    }

    #[test]
    fn wren_clears_after_write() {
        let (mut m, mut e) = bus();
        write(&mut m, &mut e, 0x0000, b"a");
        // Second write without a fresh WREN must not stick.
        let mut tx = vec![opcode::WRITE, 0x00, 0x01];
        tx.extend_from_slice(b"b");
        m.transaction(&mut e, &tx);
        assert_eq!(read(&mut m, &mut e, 0x0001, 1), vec![0xFF]);
    }

    #[test]
    fn status_register_reports_wren() {
        let (mut m, mut e) = bus();
        let rx = m.transaction(&mut e, &[opcode::RDSR, 0x00]);
        assert_eq!(rx[1] & 0x02, 0, "WEL clear initially");
        m.transaction(&mut e, &[opcode::WREN]);
        let rx = m.transaction(&mut e, &[opcode::RDSR, 0x00]);
        assert_eq!(rx[1] & 0x02, 0x02, "WEL set after WREN");
    }

    #[test]
    fn page_writes_wrap_within_the_page() {
        let (mut m, mut e) = bus();
        // Start 2 bytes before a page end; write 4 bytes → last two wrap to
        // the page start.
        write(&mut m, &mut e, 30, &[1, 2, 3, 4]);
        assert_eq!(e.peek(30), Some(1));
        assert_eq!(e.peek(31), Some(2));
        assert_eq!(e.peek(0), Some(3), "page wrap");
        assert_eq!(e.peek(1), Some(4));
        assert_eq!(e.peek(32), Some(0xFF), "next page untouched");
    }

    #[test]
    fn sequential_read_crosses_pages() {
        let (mut m, mut e) = bus();
        write(&mut m, &mut e, 0x001E, &[9, 8]); // fills 30, 31
        write(&mut m, &mut e, 0x0020, &[7, 6]); // next page
        assert_eq!(read(&mut m, &mut e, 0x001E, 4), vec![9, 8, 7, 6]);
    }

    #[test]
    fn bus_accounting() {
        let (mut m, mut e) = bus();
        write(&mut m, &mut e, 0, b"xy");
        assert_eq!(m.transactions(), 2); // WREN + WRITE
        assert_eq!(m.bytes_transferred(), 1 + 5);
        // 8 bytes at 1 MHz = 64 µs.
        assert!((m.transfer_time(8).get() - 64e-6).abs() < 1e-12);
    }

    #[test]
    fn rejects_zero_clock() {
        assert!(SpiMaster::new(Hertz::new(0.0)).is_err());
    }
}
