//! Error type for platform emulation.

/// Errors produced by the ISIF platform emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsifError {
    /// A register address outside the mapped space was accessed.
    UnmappedRegister {
        /// The offending address.
        address: u16,
    },
    /// A channel index outside 0..4 was requested.
    NoSuchChannel {
        /// The offending index.
        index: usize,
    },
    /// EEPROM record failed its CRC check.
    CorruptRecord {
        /// Record slot index.
        slot: usize,
    },
    /// EEPROM slot does not contain a record.
    EmptySlot {
        /// Record slot index.
        slot: usize,
    },
    /// EEPROM record payload too large for a slot.
    RecordTooLarge {
        /// Requested payload size in bytes.
        size: usize,
        /// Slot capacity in bytes.
        capacity: usize,
    },
    /// A UART frame failed to decode.
    FrameError {
        /// What went wrong.
        reason: &'static str,
    },
    /// A sub-block rejected its configuration.
    Config {
        /// Description of the rejected configuration.
        reason: String,
    },
}

impl core::fmt::Display for IsifError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IsifError::UnmappedRegister { address } => {
                write!(f, "unmapped register address {address:#06x}")
            }
            IsifError::NoSuchChannel { index } => {
                write!(f, "no such input channel: {index} (platform has 4)")
            }
            IsifError::CorruptRecord { slot } => {
                write!(f, "eeprom record in slot {slot} failed crc check")
            }
            IsifError::EmptySlot { slot } => write!(f, "eeprom slot {slot} is empty"),
            IsifError::RecordTooLarge { size, capacity } => {
                write!(f, "record of {size} bytes exceeds slot capacity {capacity}")
            }
            IsifError::FrameError { reason } => write!(f, "uart frame error: {reason}"),
            IsifError::Config { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for IsifError {}

impl From<hotwire_afe::AfeError> for IsifError {
    fn from(e: hotwire_afe::AfeError) -> Self {
        IsifError::Config {
            reason: e.to_string(),
        }
    }
}

impl From<hotwire_dsp::DspError> for IsifError {
    fn from(e: hotwire_dsp::DspError) -> Self {
        IsifError::Config {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(IsifError::UnmappedRegister { address: 0x100 }
            .to_string()
            .contains("0x0100"));
        assert!(IsifError::NoSuchChannel { index: 9 }
            .to_string()
            .contains('9'));
        assert!(IsifError::CorruptRecord { slot: 2 }
            .to_string()
            .contains("crc"));
    }

    #[test]
    fn conversions_from_subcrates() {
        let afe_err = hotwire_afe::AfeError::NonPositive {
            name: "vref",
            value: 0.0,
        };
        let e: IsifError = afe_err.into();
        assert!(matches!(e, IsifError::Config { .. }));
        let dsp_err = hotwire_dsp::DspError::InvalidConfig {
            name: "order",
            constraint: "1..=6",
        };
        let e: IsifError = dsp_err.into();
        assert!(e.to_string().contains("order"));
    }
}
