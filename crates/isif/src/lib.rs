//! Behavioural emulation of the ISIF (Intelligent Sensor InterFace) platform
//! SoC.
//!
//! ISIF is the paper's mixed-signal platform-on-chip (0.35 µm BCD6, 72 mm²):
//! an analog front end with four configurable input channels, a LEON-based
//! digital section with hardware DSP IPs and *exactly-matching software
//! peripherals*, plus standard peripherals (timers, watchdog, memories,
//! UART/SPI). Its purpose is fast prototyping: a sensor interface is explored
//! by configuring channels and interconnecting IPs, with software IPs
//! standing in for future hardware.
//!
//! This crate reproduces that platform shape:
//!
//! * [`regs`] — the configuration register file (the "JLCC" config bus)
//! * [`channel`] — one analog input channel: readout mode → in-amp →
//!   anti-alias → ΣΔ modulator → decimation chain to 16-bit samples
//! * [`sched`] — the software-IP scheduler with a per-tick LEON cycle budget
//! * [`timer`] — periodic timers and the watchdog
//! * [`eeprom`] — CRC-protected calibration storage
//! * [`uart`] — telemetry framing (encoder/decoder state machine)
//! * [`platform`] — the assembled [`platform::IsifPlatform`]
//!
//! The substitution from the real chip is documented in `DESIGN.md`: no
//! SPARC-V8 interpreter — software IPs are Rust closures scheduled at the
//! decimated control rate with an explicit cycle budget, which preserves the
//! data rates, wordlengths and HW/SW structure without emulating an ISA.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod eeprom;
pub mod error;
pub mod platform;
pub mod regs;
pub mod sched;
pub mod spi;
pub mod timer;
pub mod uart;

pub use channel::{ChannelConfig, InputChannel, ReadoutMode};
pub use eeprom::CalibrationStore;
pub use error::IsifError;
pub use platform::IsifPlatform;
pub use regs::RegisterFile;
pub use sched::{IpTask, Scheduler};
pub use spi::{SpiDevice, SpiEeprom, SpiMaster};
pub use timer::{Timer, Watchdog};
