//! UART telemetry framing — the link carrying measurements off the probe.
//!
//! Frame format: `0xA5 | len(1) | payload(len) | crc16(2, big-endian)`,
//! CRC-16/CCITT over the payload. The decoder is a resynchronizing byte
//! state machine: garbage between frames is skipped, truncated or corrupt
//! frames are counted and dropped.

use crate::eeprom::crc16_ccitt;
use crate::IsifError;

/// Frame start-of-header byte.
pub const SOH: u8 = 0xA5;
/// Maximum payload bytes per frame.
pub const MAX_PAYLOAD: usize = 255;

/// Encodes one telemetry frame.
///
/// # Errors
///
/// Returns [`IsifError::FrameError`] if the payload exceeds
/// [`MAX_PAYLOAD`].
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, IsifError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(IsifError::FrameError {
            reason: "payload exceeds 255 bytes",
        });
    }
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.push(SOH);
    out.push(payload.len() as u8);
    out.extend_from_slice(payload);
    let crc = crc16_ccitt(payload);
    out.extend_from_slice(&crc.to_be_bytes());
    Ok(out)
}

/// Decoder state machine.
#[derive(Debug, Clone, Default)]
enum DecodeState {
    #[default]
    Hunt,
    Length,
    Payload {
        expected: usize,
    },
    Crc {
        have_high: bool,
        high: u8,
    },
}

/// What one pushed byte did to the decoder — the edge-resolved variant of
/// [`FrameDecoder::push`]'s `Option`, for callers that must react to frame
/// *errors* (observability, link diagnostics) rather than only to good
/// frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushOutcome {
    /// The byte advanced the state machine; nothing concluded yet.
    Pending,
    /// The byte closed a frame with a valid CRC; here is its payload.
    Frame(Vec<u8>),
    /// The byte closed a frame whose CRC mismatched; the frame was dropped.
    CrcError,
}

/// A snapshot of the decoder's cumulative link counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct LinkStats {
    /// Frames decoded successfully.
    pub good_frames: u64,
    /// Frames dropped for CRC mismatch.
    pub crc_errors: u64,
    /// Bytes skipped while hunting for a start-of-header.
    pub resyncs: u64,
}

/// A resynchronizing frame decoder.
///
/// ```
/// use hotwire_isif::uart::{encode_frame, FrameDecoder};
///
/// let mut dec = FrameDecoder::new();
/// let wire = encode_frame(b"v=123")?;
/// let mut got = None;
/// for b in wire {
///     if let Some(frame) = dec.push(b) {
///         got = Some(frame);
///     }
/// }
/// assert_eq!(got.as_deref(), Some(&b"v=123"[..]));
/// # Ok::<(), hotwire_isif::IsifError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrameDecoder {
    state: DecodeState,
    buf: Vec<u8>,
    good_frames: u64,
    crc_errors: u64,
    resyncs: u64,
}

impl FrameDecoder {
    /// Creates a decoder in hunt state.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Feeds one wire byte; returns a completed payload when a frame closes
    /// with a valid CRC.
    pub fn push(&mut self, byte: u8) -> Option<Vec<u8>> {
        match self.push_described(byte) {
            PushOutcome::Frame(payload) => Some(payload),
            PushOutcome::Pending | PushOutcome::CrcError => None,
        }
    }

    /// Feeds one wire byte and reports what it concluded — like
    /// [`push`](Self::push), but a dropped frame is distinguishable from
    /// an uneventful byte, so callers can emit a frame-error event at the
    /// exact byte that killed the frame.
    pub fn push_described(&mut self, byte: u8) -> PushOutcome {
        match self.state {
            DecodeState::Hunt => {
                if byte == SOH {
                    self.state = DecodeState::Length;
                } else {
                    self.resyncs += 1;
                }
                PushOutcome::Pending
            }
            DecodeState::Length => {
                self.buf.clear();
                if byte == 0 {
                    self.state = DecodeState::Crc {
                        have_high: false,
                        high: 0,
                    };
                } else {
                    self.state = DecodeState::Payload {
                        expected: byte as usize,
                    };
                }
                PushOutcome::Pending
            }
            DecodeState::Payload { expected } => {
                self.buf.push(byte);
                if self.buf.len() == expected {
                    self.state = DecodeState::Crc {
                        have_high: false,
                        high: 0,
                    };
                }
                PushOutcome::Pending
            }
            DecodeState::Crc { have_high, high } => {
                if !have_high {
                    self.state = DecodeState::Crc {
                        have_high: true,
                        high: byte,
                    };
                    PushOutcome::Pending
                } else {
                    self.state = DecodeState::Hunt;
                    let wire_crc = u16::from_be_bytes([high, byte]);
                    if wire_crc == crc16_ccitt(&self.buf) {
                        self.good_frames += 1;
                        PushOutcome::Frame(std::mem::take(&mut self.buf))
                    } else {
                        self.crc_errors += 1;
                        PushOutcome::CrcError
                    }
                }
            }
        }
    }

    /// Frames decoded successfully.
    #[inline]
    pub fn good_frames(&self) -> u64 {
        self.good_frames
    }

    /// Frames dropped for CRC mismatch.
    #[inline]
    pub fn crc_errors(&self) -> u64 {
        self.crc_errors
    }

    /// Bytes skipped while hunting for a start-of-header.
    #[inline]
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Snapshot of all cumulative link counters.
    #[inline]
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            good_frames: self.good_frames,
            crc_errors: self.crc_errors,
            resyncs: self.resyncs,
        }
    }

    /// Idle-line flush: a UART receiver detects inter-frame silence and
    /// resets its framing. Without this, a spurious start-of-header in line
    /// noise whose false length field is large can swallow genuine frames
    /// indefinitely (a classic length-prefixed-framing failure mode — found
    /// by the property tests).
    pub fn flush(&mut self) {
        self.state = DecodeState::Hunt;
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(dec: &mut FrameDecoder, bytes: &[u8]) -> Vec<Vec<u8>> {
        bytes.iter().filter_map(|&b| dec.push(b)).collect()
    }

    #[test]
    fn round_trip_single_frame() {
        let mut dec = FrameDecoder::new();
        let wire = encode_frame(b"flow=42.5cm/s").unwrap();
        let frames = decode_all(&mut dec, &wire);
        assert_eq!(frames, vec![b"flow=42.5cm/s".to_vec()]);
        assert_eq!(dec.good_frames(), 1);
    }

    #[test]
    fn back_to_back_frames() {
        let mut dec = FrameDecoder::new();
        let mut wire = encode_frame(b"a").unwrap();
        wire.extend(encode_frame(b"bb").unwrap());
        wire.extend(encode_frame(b"ccc").unwrap());
        let frames = decode_all(&mut dec, &wire);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[2], b"ccc");
    }

    #[test]
    fn garbage_between_frames_is_skipped() {
        let mut dec = FrameDecoder::new();
        let mut wire = vec![0x00, 0x12, 0x99];
        wire.extend(encode_frame(b"x").unwrap());
        wire.extend([0xFF, 0x33]);
        wire.extend(encode_frame(b"y").unwrap());
        let frames = decode_all(&mut dec, &wire);
        assert_eq!(frames.len(), 2);
        assert!(dec.resyncs() >= 5);
    }

    #[test]
    fn corrupt_payload_dropped() {
        let mut dec = FrameDecoder::new();
        let mut wire = encode_frame(b"important").unwrap();
        wire[4] ^= 0x01; // flip a payload bit
        let frames = decode_all(&mut dec, &wire);
        assert!(frames.is_empty());
        assert_eq!(dec.crc_errors(), 1);
    }

    #[test]
    fn decoder_recovers_after_corrupt_frame() {
        let mut dec = FrameDecoder::new();
        let mut wire = encode_frame(b"bad").unwrap();
        let n = wire.len();
        wire[n - 1] ^= 0xFF; // corrupt CRC
        wire.extend(encode_frame(b"good").unwrap());
        let frames = decode_all(&mut dec, &wire);
        assert_eq!(frames, vec![b"good".to_vec()]);
    }

    #[test]
    fn empty_payload_frame() {
        let mut dec = FrameDecoder::new();
        let wire = encode_frame(b"").unwrap();
        let frames = decode_all(&mut dec, &wire);
        assert_eq!(frames, vec![Vec::<u8>::new()]);
    }

    #[test]
    fn oversized_payload_rejected() {
        let big = vec![0u8; 256];
        assert!(encode_frame(&big).is_err());
        let max = vec![7u8; 255];
        assert!(encode_frame(&max).is_ok());
    }

    #[test]
    fn push_described_distinguishes_crc_errors() {
        let mut dec = FrameDecoder::new();
        let mut wire = encode_frame(b"payload").unwrap();
        let n = wire.len();
        wire[n - 1] ^= 0x01; // corrupt the CRC low byte
        let mut outcomes: Vec<PushOutcome> = wire.iter().map(|&b| dec.push_described(b)).collect();
        assert_eq!(outcomes.pop(), Some(PushOutcome::CrcError));
        assert!(outcomes.iter().all(|o| *o == PushOutcome::Pending));

        // A good frame closes with its payload on the final byte.
        let wire = encode_frame(b"ok").unwrap();
        let last = wire.iter().map(|&b| dec.push_described(b)).last().unwrap();
        assert_eq!(last, PushOutcome::Frame(b"ok".to_vec()));
        assert_eq!(
            dec.stats(),
            LinkStats {
                good_frames: 1,
                crc_errors: 1,
                resyncs: 0
            }
        );
    }
}
