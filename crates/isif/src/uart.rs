//! UART telemetry framing — the link carrying measurements off the probe.
//!
//! Frame format: `0xA5 | len(1) | payload(len) | crc16(2, big-endian)`,
//! CRC-16/CCITT over the payload. The decoder is a resynchronizing byte
//! state machine: garbage between frames is skipped, truncated or corrupt
//! frames are counted and dropped.

use crate::eeprom::crc16_ccitt;
use crate::IsifError;
use std::collections::VecDeque;

/// Frame start-of-header byte.
pub const SOH: u8 = 0xA5;
/// Maximum payload bytes per frame.
pub const MAX_PAYLOAD: usize = 255;

/// Encodes one telemetry frame.
///
/// # Errors
///
/// Returns [`IsifError::FrameError`] if the payload exceeds
/// [`MAX_PAYLOAD`].
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, IsifError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(IsifError::FrameError {
            reason: "payload exceeds 255 bytes",
        });
    }
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.push(SOH);
    out.push(payload.len() as u8);
    out.extend_from_slice(payload);
    let crc = crc16_ccitt(payload);
    out.extend_from_slice(&crc.to_be_bytes());
    Ok(out)
}

/// Decoder state machine.
#[derive(Debug, Clone, Default)]
enum DecodeState {
    #[default]
    Hunt,
    Length,
    Payload {
        expected: usize,
    },
    Crc {
        have_high: bool,
        high: u8,
    },
}

/// What one pushed byte did to the decoder — the edge-resolved variant of
/// [`FrameDecoder::push`]'s `Option`, for callers that must react to frame
/// *errors* (observability, link diagnostics) rather than only to good
/// frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushOutcome {
    /// The byte advanced the state machine; nothing concluded yet.
    Pending,
    /// The byte closed a frame with a valid CRC; here is its payload.
    Frame(Vec<u8>),
    /// The byte closed a frame whose CRC mismatched; the frame was dropped.
    CrcError {
        /// Genuine frames recovered by re-scanning the dropped frame's
        /// bytes for an embedded start-of-header. A false `0xA5` in line
        /// noise whose bogus length field spans a real frame used to
        /// swallow that frame; the re-hunt decodes it instead. Usually
        /// empty (a plain corrupt frame contains no embedded frame).
        recovered: Vec<Vec<u8>>,
    },
}

/// A snapshot of the decoder's cumulative link counters.
///
/// The first three counters keep their historical semantics exactly; the
/// remaining three were added with the re-hunt/flush accounting fixes and
/// together close the byte ledger: every byte pushed is either skipped
/// while hunting (`resyncs`), part of a decoded frame, discarded
/// (`discarded_bytes`), or still in flight inside the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct LinkStats {
    /// Frames decoded successfully (including recovered ones).
    pub good_frames: u64,
    /// Frames dropped for CRC mismatch.
    pub crc_errors: u64,
    /// Bytes skipped while hunting for a start-of-header.
    pub resyncs: u64,
    /// Frames recovered by re-scanning the bytes of a dropped or aborted
    /// frame (also counted in `good_frames`).
    pub recovered_frames: u64,
    /// In-flight frames abandoned by an idle-line [`FrameDecoder::flush`]
    /// (including partial frames re-adopted and re-abandoned within one
    /// flush).
    pub aborted_frames: u64,
    /// Bytes consumed into a committed frame and ultimately thrown away
    /// without decoding into any frame — counted when a CRC mismatch or a
    /// flush discards the frame's bytes, net of any recovered frames.
    pub discarded_bytes: u64,
}

impl LinkStats {
    /// Adds another snapshot's counters into this one (service-side
    /// aggregation across many line decoders).
    pub fn merge(&mut self, other: &LinkStats) {
        self.good_frames += other.good_frames;
        self.crc_errors += other.crc_errors;
        self.resyncs += other.resyncs;
        self.recovered_frames += other.recovered_frames;
        self.aborted_frames += other.aborted_frames;
        self.discarded_bytes += other.discarded_bytes;
    }
}

/// What a candidate frame starting at a given span offset turned out to be
/// during a re-hunt ([`FrameDecoder`] internal).
enum FrameAt {
    /// A complete, CRC-valid frame of this payload length.
    Valid { payload_len: usize },
    /// A complete frame shape whose CRC mismatched (noise alignment).
    BadCrc,
    /// The span ends before the candidate completes.
    Incomplete,
}

/// Classifies the candidate frame at `span[i]` (which must be an SOH).
fn frame_at(span: &[u8], i: usize) -> FrameAt {
    let Some(&len) = span.get(i + 1) else {
        return FrameAt::Incomplete;
    };
    let len = len as usize;
    let end = i + 2 + len + 2;
    if end > span.len() {
        return FrameAt::Incomplete;
    }
    let payload = &span[i + 2..i + 2 + len];
    let crc = u16::from_be_bytes([span[end - 2], span[end - 1]]);
    if crc == crc16_ccitt(payload) {
        FrameAt::Valid { payload_len: len }
    } else {
        FrameAt::BadCrc
    }
}

/// A resynchronizing frame decoder.
///
/// ```
/// use hotwire_isif::uart::{encode_frame, FrameDecoder};
///
/// let mut dec = FrameDecoder::new();
/// let wire = encode_frame(b"v=123")?;
/// let mut got = None;
/// for b in wire {
///     if let Some(frame) = dec.push(b) {
///         got = Some(frame);
///     }
/// }
/// assert_eq!(got.as_deref(), Some(&b"v=123"[..]));
/// # Ok::<(), hotwire_isif::IsifError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrameDecoder {
    state: DecodeState,
    /// Payload bytes of the in-flight frame.
    buf: Vec<u8>,
    /// Every raw byte consumed since (not including) the committed SOH —
    /// length byte, payload and CRC bytes. This is what gets re-hunted
    /// when the frame is dropped (CRC mismatch) or aborted (flush).
    raw: Vec<u8>,
    /// Recovered frames queued for delivery through [`push`](Self::push)
    /// (which can only return one frame per byte).
    queued: VecDeque<Vec<u8>>,
    good_frames: u64,
    crc_errors: u64,
    resyncs: u64,
    recovered_frames: u64,
    aborted_frames: u64,
    discarded_bytes: u64,
}

impl FrameDecoder {
    /// Creates a decoder in hunt state.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Feeds one wire byte; returns a completed payload when a frame closes
    /// with a valid CRC.
    ///
    /// Frames recovered from the bytes of a dropped frame (see
    /// [`PushOutcome::CrcError`]) are delivered too, one per call, in wire
    /// order — drain the remainder with [`flush`](Self::flush) if the
    /// stream ends.
    pub fn push(&mut self, byte: u8) -> Option<Vec<u8>> {
        match self.push_described(byte) {
            PushOutcome::Frame(payload) => {
                if self.queued.is_empty() {
                    return Some(payload);
                }
                self.queued.push_back(payload);
            }
            PushOutcome::CrcError { recovered } => self.queued.extend(recovered),
            PushOutcome::Pending => {}
        }
        self.queued.pop_front()
    }

    /// Feeds one wire byte and reports what it concluded — like
    /// [`push`](Self::push), but a dropped frame is distinguishable from
    /// an uneventful byte, so callers can emit a frame-error event at the
    /// exact byte that killed the frame.
    pub fn push_described(&mut self, byte: u8) -> PushOutcome {
        match self.state {
            DecodeState::Hunt => {
                if byte == SOH {
                    self.raw.clear();
                    self.state = DecodeState::Length;
                } else {
                    self.resyncs += 1;
                }
                PushOutcome::Pending
            }
            DecodeState::Length => {
                self.raw.push(byte);
                self.buf.clear();
                if byte == 0 {
                    self.state = DecodeState::Crc {
                        have_high: false,
                        high: 0,
                    };
                } else {
                    self.state = DecodeState::Payload {
                        expected: byte as usize,
                    };
                }
                PushOutcome::Pending
            }
            DecodeState::Payload { expected } => {
                self.raw.push(byte);
                self.buf.push(byte);
                if self.buf.len() == expected {
                    self.state = DecodeState::Crc {
                        have_high: false,
                        high: 0,
                    };
                }
                PushOutcome::Pending
            }
            DecodeState::Crc { have_high, high } => {
                self.raw.push(byte);
                if !have_high {
                    self.state = DecodeState::Crc {
                        have_high: true,
                        high: byte,
                    };
                    PushOutcome::Pending
                } else {
                    self.state = DecodeState::Hunt;
                    let wire_crc = u16::from_be_bytes([high, byte]);
                    if wire_crc == crc16_ccitt(&self.buf) {
                        self.good_frames += 1;
                        self.raw.clear();
                        PushOutcome::Frame(std::mem::take(&mut self.buf))
                    } else {
                        self.crc_errors += 1;
                        self.buf.clear();
                        let span = std::mem::take(&mut self.raw);
                        let recovered = self.rescan(&span);
                        PushOutcome::CrcError { recovered }
                    }
                }
            }
        }
    }

    /// Re-hunts a discarded in-flight span (the bytes that followed a
    /// committed SOH) for embedded genuine frames.
    ///
    /// Complete CRC-valid frames decode and are returned; a complete but
    /// CRC-mismatched candidate is treated as a noise alignment (only its
    /// SOH is skipped, so a real frame starting inside it is still found);
    /// a trailing incomplete candidate is adopted as the new in-flight
    /// frame so subsequent stream bytes can complete it. Bytes that end up
    /// in none of those count into `discarded_bytes`, keeping the byte
    /// ledger exact.
    fn rescan(&mut self, span: &[u8]) -> Vec<Vec<u8>> {
        let mut recovered = Vec::new();
        // The SOH that committed the discarded frame is itself lost.
        self.discarded_bytes += 1;
        let mut i = 0;
        while i < span.len() {
            if span[i] != SOH {
                self.discarded_bytes += 1;
                i += 1;
                continue;
            }
            match frame_at(span, i) {
                FrameAt::Valid { payload_len } => {
                    self.good_frames += 1;
                    self.recovered_frames += 1;
                    recovered.push(span[i + 2..i + 2 + payload_len].to_vec());
                    i += payload_len + 4;
                }
                FrameAt::BadCrc => {
                    self.discarded_bytes += 1;
                    i += 1;
                }
                FrameAt::Incomplete => {
                    self.adopt(&span[i + 1..]);
                    return recovered;
                }
            }
        }
        recovered
    }

    /// Adopts a partial frame found at the tail of a re-hunted span as the
    /// live in-flight frame. `rest` holds the bytes after the candidate's
    /// SOH (length byte onward) and is strictly shorter than a complete
    /// frame.
    fn adopt(&mut self, rest: &[u8]) {
        self.raw.clear();
        self.raw.extend_from_slice(rest);
        self.buf.clear();
        match rest.split_first() {
            None => self.state = DecodeState::Length,
            Some((&len, body)) => {
                let len = len as usize;
                if body.len() < len {
                    self.buf.extend_from_slice(body);
                    self.state = DecodeState::Payload { expected: len };
                } else {
                    self.buf.extend_from_slice(&body[..len]);
                    self.state = match body.len() - len {
                        0 => DecodeState::Crc {
                            have_high: false,
                            high: 0,
                        },
                        1 => DecodeState::Crc {
                            have_high: true,
                            high: body[len],
                        },
                        _ => unreachable!("a complete candidate is never adopted"),
                    };
                }
            }
        }
    }

    /// Frames decoded successfully.
    #[inline]
    pub fn good_frames(&self) -> u64 {
        self.good_frames
    }

    /// Frames dropped for CRC mismatch.
    #[inline]
    pub fn crc_errors(&self) -> u64 {
        self.crc_errors
    }

    /// Bytes skipped while hunting for a start-of-header.
    #[inline]
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Frames recovered by re-scanning dropped or aborted frame bytes.
    #[inline]
    pub fn recovered_frames(&self) -> u64 {
        self.recovered_frames
    }

    /// In-flight frames abandoned by an idle-line flush.
    #[inline]
    pub fn aborted_frames(&self) -> u64 {
        self.aborted_frames
    }

    /// Bytes discarded without decoding into any frame.
    #[inline]
    pub fn discarded_bytes(&self) -> u64 {
        self.discarded_bytes
    }

    /// Bytes currently held inside the decoder (the committed SOH plus
    /// everything consumed after it), zero when hunting.
    #[inline]
    pub fn in_flight_bytes(&self) -> u64 {
        match self.state {
            DecodeState::Hunt => 0,
            _ => self.raw.len() as u64 + 1,
        }
    }

    /// Snapshot of all cumulative link counters.
    #[inline]
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            good_frames: self.good_frames,
            crc_errors: self.crc_errors,
            resyncs: self.resyncs,
            recovered_frames: self.recovered_frames,
            aborted_frames: self.aborted_frames,
            discarded_bytes: self.discarded_bytes,
        }
    }

    /// Idle-line flush: a UART receiver detects inter-frame silence and
    /// resets its framing, so a spurious start-of-header in line noise
    /// whose false length field is large cannot swallow genuine frames
    /// indefinitely (a classic length-prefixed-framing failure mode — found
    /// by the property tests).
    ///
    /// The abandoned in-flight bytes are re-hunted exactly as on a CRC
    /// mismatch, so a genuine frame buried inside a false frame still
    /// decodes: it is returned here, after any frames recovered earlier
    /// that [`push`](Self::push) has not delivered yet. Each abandoned
    /// partial counts into `aborted_frames` and its unrecovered bytes into
    /// `discarded_bytes`; the three historical counters are untouched.
    pub fn flush(&mut self) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = self.queued.drain(..).collect();
        while !matches!(self.state, DecodeState::Hunt) {
            self.aborted_frames += 1;
            self.buf.clear();
            self.state = DecodeState::Hunt;
            let span = std::mem::take(&mut self.raw);
            // The re-hunt may adopt a shorter trailing partial; an idle
            // line truncates that too, so the loop aborts it as well. Each
            // pass strictly shrinks the span, so this terminates.
            out.extend(self.rescan(&span));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(dec: &mut FrameDecoder, bytes: &[u8]) -> Vec<Vec<u8>> {
        bytes.iter().filter_map(|&b| dec.push(b)).collect()
    }

    #[test]
    fn round_trip_single_frame() {
        let mut dec = FrameDecoder::new();
        let wire = encode_frame(b"flow=42.5cm/s").unwrap();
        let frames = decode_all(&mut dec, &wire);
        assert_eq!(frames, vec![b"flow=42.5cm/s".to_vec()]);
        assert_eq!(dec.good_frames(), 1);
    }

    #[test]
    fn back_to_back_frames() {
        let mut dec = FrameDecoder::new();
        let mut wire = encode_frame(b"a").unwrap();
        wire.extend(encode_frame(b"bb").unwrap());
        wire.extend(encode_frame(b"ccc").unwrap());
        let frames = decode_all(&mut dec, &wire);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[2], b"ccc");
    }

    #[test]
    fn garbage_between_frames_is_skipped() {
        let mut dec = FrameDecoder::new();
        let mut wire = vec![0x00, 0x12, 0x99];
        wire.extend(encode_frame(b"x").unwrap());
        wire.extend([0xFF, 0x33]);
        wire.extend(encode_frame(b"y").unwrap());
        let frames = decode_all(&mut dec, &wire);
        assert_eq!(frames.len(), 2);
        assert!(dec.resyncs() >= 5);
    }

    #[test]
    fn corrupt_payload_dropped() {
        let mut dec = FrameDecoder::new();
        let mut wire = encode_frame(b"important").unwrap();
        wire[4] ^= 0x01; // flip a payload bit
        let frames = decode_all(&mut dec, &wire);
        assert!(frames.is_empty());
        assert_eq!(dec.crc_errors(), 1);
    }

    #[test]
    fn decoder_recovers_after_corrupt_frame() {
        let mut dec = FrameDecoder::new();
        let mut wire = encode_frame(b"bad").unwrap();
        let n = wire.len();
        wire[n - 1] ^= 0xFF; // corrupt CRC
        wire.extend(encode_frame(b"good").unwrap());
        let frames = decode_all(&mut dec, &wire);
        assert_eq!(frames, vec![b"good".to_vec()]);
    }

    #[test]
    fn empty_payload_frame() {
        let mut dec = FrameDecoder::new();
        let wire = encode_frame(b"").unwrap();
        let frames = decode_all(&mut dec, &wire);
        assert_eq!(frames, vec![Vec::<u8>::new()]);
    }

    #[test]
    fn oversized_payload_rejected() {
        let big = vec![0u8; 256];
        assert!(encode_frame(&big).is_err());
        let max = vec![7u8; 255];
        assert!(encode_frame(&max).is_ok());
    }

    #[test]
    fn push_described_distinguishes_crc_errors() {
        let mut dec = FrameDecoder::new();
        let mut wire = encode_frame(b"payload").unwrap();
        let n = wire.len();
        wire[n - 1] ^= 0x01; // corrupt the CRC low byte
        let mut outcomes: Vec<PushOutcome> = wire.iter().map(|&b| dec.push_described(b)).collect();
        // The dropped span contains no embedded SOH, so nothing recovers.
        assert_eq!(
            outcomes.pop(),
            Some(PushOutcome::CrcError { recovered: vec![] })
        );
        assert!(outcomes.iter().all(|o| *o == PushOutcome::Pending));

        // A good frame closes with its payload on the final byte.
        let wire = encode_frame(b"ok").unwrap();
        let last = wire.iter().map(|&b| dec.push_described(b)).last().unwrap();
        assert_eq!(last, PushOutcome::Frame(b"ok".to_vec()));
        assert_eq!(
            dec.stats(),
            LinkStats {
                good_frames: 1,
                crc_errors: 1,
                resyncs: 0,
                recovered_frames: 0,
                aborted_frames: 0,
                // The dropped frame's SOH + len + 7 payload + 2 CRC bytes.
                discarded_bytes: 11,
            }
        );
    }

    #[test]
    fn false_soh_spanning_a_genuine_frame_recovers_it() {
        // Regression: a spurious 0xA5 whose bogus length field spans a
        // genuine frame used to swallow that frame silently. The re-hunt
        // inside the dropped span must decode it.
        let mut dec = FrameDecoder::new();
        let inner = encode_frame(b"hello").unwrap(); // 9 wire bytes
        let mut wire = vec![SOH, 25]; // false header claiming 25 payload bytes
        wire.extend([0x11; 16]); // bogus "payload" prefix
        wire.extend(&inner); // the genuine frame, inside the false payload
        wire.extend([0x00, 0x00]); // false CRC (mismatches)
        let mut frames: Vec<Vec<u8>> = wire.iter().filter_map(|&b| dec.push(b)).collect();
        frames.extend(dec.flush());
        assert_eq!(frames, vec![b"hello".to_vec()]);
        let stats = dec.stats();
        assert_eq!(stats.crc_errors, 1);
        assert_eq!(stats.good_frames, 1);
        assert_eq!(stats.recovered_frames, 1);
        // Ledger: 29 wire bytes = 9 recovered + 20 discarded, 0 resyncs.
        assert_eq!(stats.resyncs, 0);
        assert_eq!(stats.discarded_bytes, 20);
    }

    #[test]
    fn unterminated_false_frame_yields_genuine_frame_on_flush() {
        // A false SOH whose length field points past the end of the burst
        // keeps the decoder mid-frame; the idle-line flush must re-hunt the
        // in-flight bytes and hand back the genuine frame buried in them.
        let mut dec = FrameDecoder::new();
        let mut wire = vec![SOH, 0xFF]; // claims 255 payload bytes
        wire.extend(encode_frame(b"hello").unwrap());
        let mid: Vec<Vec<u8>> = wire.iter().filter_map(|&b| dec.push(b)).collect();
        assert!(mid.is_empty(), "frame is still swallowed mid-burst");
        let recovered = dec.flush();
        assert_eq!(recovered, vec![b"hello".to_vec()]);
        let stats = dec.stats();
        assert_eq!(stats.aborted_frames, 1);
        assert_eq!(stats.recovered_frames, 1);
        // The false SOH and its length byte are all that is lost.
        assert_eq!(stats.discarded_bytes, 2);
        assert_eq!(dec.in_flight_bytes(), 0);
    }

    #[test]
    fn flush_counts_aborted_partial_frames() {
        let mut dec = FrameDecoder::new();
        for b in [SOH, 0x05, 0x01, 0x02] {
            assert_eq!(dec.push_described(b), PushOutcome::Pending);
        }
        assert_eq!(dec.in_flight_bytes(), 4);
        assert!(dec.flush().is_empty());
        let stats = dec.stats();
        assert_eq!(stats.aborted_frames, 1);
        assert_eq!(stats.discarded_bytes, 4);
        // The historical counters are untouched by an abort.
        assert_eq!(
            (stats.good_frames, stats.crc_errors, stats.resyncs),
            (0, 0, 0)
        );
        // Idempotent: flushing a hunting decoder counts nothing.
        assert!(dec.flush().is_empty());
        assert_eq!(dec.stats(), stats);
    }

    #[test]
    fn link_stats_merge_adds_counters() {
        let mut a = LinkStats {
            good_frames: 1,
            crc_errors: 2,
            resyncs: 3,
            recovered_frames: 4,
            aborted_frames: 5,
            discarded_bytes: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(
            a,
            LinkStats {
                good_frames: 2,
                crc_errors: 4,
                resyncs: 6,
                recovered_frames: 8,
                aborted_frames: 10,
                discarded_bytes: 12,
            }
        );
    }
}
