//! Timers and the watchdog — ISIF's "standard IPs such as timers, watchdog".

/// A periodic down-counting timer clocked in control ticks.
#[derive(Debug, Clone)]
pub struct Timer {
    period: u32,
    counter: u32,
    fires: u64,
}

impl Timer {
    /// Creates a timer firing every `period` ticks (clamped to ≥ 1).
    pub fn new(period: u32) -> Self {
        let period = period.max(1);
        Timer {
            period,
            counter: period,
            fires: 0,
        }
    }

    /// The configured period.
    #[inline]
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Advances one tick; returns `true` on the tick the timer fires.
    pub fn tick(&mut self) -> bool {
        self.counter -= 1;
        if self.counter == 0 {
            self.counter = self.period;
            self.fires += 1;
            true
        } else {
            false
        }
    }

    /// Total number of firings.
    #[inline]
    pub fn fire_count(&self) -> u64 {
        self.fires
    }

    /// Restarts the countdown from the full period.
    pub fn restart(&mut self) {
        self.counter = self.period;
    }
}

/// A windowless watchdog: must be kicked at least every `timeout` ticks or it
/// records a reset event (the conditioning firmware kicks it once per healthy
/// control iteration).
#[derive(Debug, Clone)]
pub struct Watchdog {
    timeout: u32,
    counter: u32,
    resets: u64,
    enabled: bool,
    pending_expiry: bool,
}

impl Watchdog {
    /// Creates an enabled watchdog with the given timeout in ticks (≥ 1).
    pub fn new(timeout: u32) -> Self {
        let timeout = timeout.max(1);
        Watchdog {
            timeout,
            counter: timeout,
            resets: 0,
            enabled: true,
            pending_expiry: false,
        }
    }

    /// Feeds the watchdog (restarts the window).
    pub fn kick(&mut self) {
        self.counter = self.timeout;
    }

    /// Advances one tick; returns `true` if the watchdog expired (a reset
    /// event is recorded, the window restarts, and the expiry is latched
    /// until [`Watchdog::take_expiry`] collects it).
    pub fn tick(&mut self) -> bool {
        if !self.enabled {
            return false;
        }
        self.counter -= 1;
        if self.counter == 0 {
            self.counter = self.timeout;
            self.resets += 1;
            self.pending_expiry = true;
            true
        } else {
            false
        }
    }

    /// Collects and clears the latched expiry flag.
    ///
    /// Expiry is edge-triggered at [`Watchdog::tick`] but supervision code
    /// usually runs later in the loop; the latch turns the missed edge into
    /// a recoverable event the supervisor can consume exactly once.
    pub fn take_expiry(&mut self) -> bool {
        core::mem::take(&mut self.pending_expiry)
    }

    /// Number of expiry events so far.
    #[inline]
    pub fn reset_count(&self) -> u64 {
        self.resets
    }

    /// Enables or disables the watchdog (e.g. during deep-sleep intervals).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if enabled {
            self.counter = self.timeout;
        }
    }

    /// Whether the watchdog is currently armed.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_fires_periodically() {
        let mut t = Timer::new(4);
        let fires: Vec<bool> = (0..12).map(|_| t.tick()).collect();
        assert_eq!(
            fires,
            vec![false, false, false, true, false, false, false, true, false, false, false, true]
        );
        assert_eq!(t.fire_count(), 3);
    }

    #[test]
    fn timer_restart() {
        let mut t = Timer::new(3);
        t.tick();
        t.restart();
        assert!(!t.tick());
        assert!(!t.tick());
        assert!(t.tick());
    }

    #[test]
    fn zero_period_clamps_to_one() {
        let mut t = Timer::new(0);
        assert!(t.tick());
        assert!(t.tick());
    }

    #[test]
    fn kicked_watchdog_never_fires() {
        let mut w = Watchdog::new(5);
        for _ in 0..100 {
            w.kick();
            assert!(!w.tick());
        }
        assert_eq!(w.reset_count(), 0);
    }

    #[test]
    fn starved_watchdog_fires() {
        let mut w = Watchdog::new(5);
        let mut fired = 0;
        for _ in 0..15 {
            if w.tick() {
                fired += 1;
            }
        }
        assert_eq!(fired, 3);
        assert_eq!(w.reset_count(), 3);
    }

    #[test]
    fn watchdog_expiry_latches_until_taken() {
        let mut w = Watchdog::new(2);
        assert!(!w.take_expiry());
        w.tick();
        w.tick(); // expires here
        assert_eq!(w.reset_count(), 1);
        assert!(w.take_expiry());
        assert!(!w.take_expiry(), "take_expiry must consume the latch");
        // A kicked watchdog never sets the latch.
        w.kick();
        assert!(!w.tick());
        assert!(!w.take_expiry());
    }

    #[test]
    fn disabled_watchdog_is_silent() {
        let mut w = Watchdog::new(2);
        w.set_enabled(false);
        assert!(!w.is_enabled());
        for _ in 0..10 {
            assert!(!w.tick());
        }
        w.set_enabled(true);
        assert!(!w.tick()); // window restarted on enable
        assert!(w.tick());
    }
}
