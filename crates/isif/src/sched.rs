//! The software-IP scheduler.
//!
//! The paper's key platform idea: "ISIF platform includes a library of
//! software peripherals (e.g. filters, controllers) with an exact matching
//! with hardware devices … The LEON CPU guarantees flexibility and required
//! computational power for real-time software IPs implementation."
//!
//! The emulation schedules software IPs at the decimated control rate and
//! charges each task a declared cycle cost against a per-tick LEON budget.
//! Overruns are counted, not fatal — exactly the design-space-exploration
//! question ("does this IP still fit in software?") the platform exists to
//! answer.

use crate::IsifError;

/// One schedulable software IP.
///
/// Tasks must be [`Send`]: the platform (and everything that owns it, up to
/// `hotwire_core::FlowMeter`) moves across threads when independent
/// co-simulation runs execute in parallel.
pub trait IpTask: Send {
    /// Human-readable task name (for overrun diagnostics).
    fn name(&self) -> &str;

    /// Declared worst-case cost in CPU cycles per invocation.
    fn cycle_cost(&self) -> u32;

    /// Runs one control-tick iteration.
    fn run(&mut self);
}

/// A fixed-priority, run-to-completion scheduler with a per-tick cycle
/// budget.
#[derive(Default)]
pub struct Scheduler {
    tasks: Vec<Box<dyn IpTask>>,
    budget_per_tick: u64,
    ticks: u64,
    overruns: u64,
    cycles_last_tick: u64,
}

impl core::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Scheduler")
            .field("tasks", &self.tasks.len())
            .field("budget_per_tick", &self.budget_per_tick)
            .field("ticks", &self.ticks)
            .field("overruns", &self.overruns)
            .finish()
    }
}

impl Scheduler {
    /// Creates a scheduler with the given per-tick cycle budget.
    ///
    /// A LEON at 40 MHz with a 1 kHz control rate has 40 000 cycles per tick;
    /// that is the platform's realistic envelope.
    ///
    /// # Errors
    ///
    /// Returns [`IsifError::Config`] for a zero budget.
    pub fn new(budget_per_tick: u64) -> Result<Self, IsifError> {
        if budget_per_tick == 0 {
            return Err(IsifError::Config {
                reason: "cycle budget must be positive".into(),
            });
        }
        Ok(Scheduler {
            tasks: Vec::new(),
            budget_per_tick,
            ticks: 0,
            overruns: 0,
            cycles_last_tick: 0,
        })
    }

    /// Registers a task at the end of the priority list (earlier = higher
    /// priority).
    pub fn add_task(&mut self, task: Box<dyn IpTask>) {
        self.tasks.push(task);
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Runs one control tick: all tasks, in priority order, charging their
    /// cycle costs. Returns the cycles consumed.
    pub fn tick(&mut self) -> u64 {
        let mut cycles = 0u64;
        for task in &mut self.tasks {
            task.run();
            cycles += task.cycle_cost() as u64;
        }
        self.ticks += 1;
        self.cycles_last_tick = cycles;
        if cycles > self.budget_per_tick {
            self.overruns += 1;
        }
        cycles
    }

    /// Total ticks executed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Ticks whose total cost exceeded the budget.
    pub fn overruns(&self) -> u64 {
        self.overruns
    }

    /// Cycles consumed by the most recent tick.
    pub fn cycles_last_tick(&self) -> u64 {
        self.cycles_last_tick
    }

    /// Fraction of the budget used by the last tick.
    pub fn utilization(&self) -> f64 {
        self.cycles_last_tick as f64 / self.budget_per_tick as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    struct Counter {
        name: String,
        cost: u32,
        count: Arc<AtomicU32>,
    }

    impl IpTask for Counter {
        fn name(&self) -> &str {
            &self.name
        }
        fn cycle_cost(&self) -> u32 {
            self.cost
        }
        fn run(&mut self) {
            self.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn counter(name: &str, cost: u32) -> (Box<Counter>, Arc<AtomicU32>) {
        let count = Arc::new(AtomicU32::new(0));
        (
            Box::new(Counter {
                name: name.into(),
                cost,
                count: Arc::clone(&count),
            }),
            count,
        )
    }

    #[test]
    fn all_tasks_run_every_tick() {
        let mut s = Scheduler::new(40_000).unwrap();
        let (t1, c1) = counter("pi", 500);
        let (t2, c2) = counter("iir", 300);
        s.add_task(t1);
        s.add_task(t2);
        for _ in 0..10 {
            s.tick();
        }
        assert_eq!(c1.load(Ordering::Relaxed), 10);
        assert_eq!(c2.load(Ordering::Relaxed), 10);
        assert_eq!(s.ticks(), 10);
        assert_eq!(s.task_count(), 2);
    }

    #[test]
    fn cycle_accounting_and_utilization() {
        let mut s = Scheduler::new(1000).unwrap();
        let (t1, _) = counter("a", 300);
        let (t2, _) = counter("b", 200);
        s.add_task(t1);
        s.add_task(t2);
        assert_eq!(s.tick(), 500);
        assert!((s.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(s.overruns(), 0);
    }

    #[test]
    fn overruns_counted_not_fatal() {
        let mut s = Scheduler::new(100).unwrap();
        let (t, c) = counter("heavy", 500);
        s.add_task(t);
        for _ in 0..5 {
            s.tick();
        }
        assert_eq!(s.overruns(), 5);
        assert_eq!(c.load(Ordering::Relaxed), 5, "task still ran");
    }

    #[test]
    fn zero_budget_rejected() {
        assert!(Scheduler::new(0).is_err());
    }
}
