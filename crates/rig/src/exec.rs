//! Deterministic parallel execution of independent jobs.
//!
//! The rig's simulations are embarrassingly parallel: every co-simulation
//! run is a pure function of its spec and seed (see the threading contract
//! in `hotwire_core`). This module provides the one primitive the campaign
//! layer needs — [`parallel_map_indexed`] — built on [`std::thread::scope`]
//! so no extra dependencies are required.
//!
//! **Determinism guarantee.** Workers pull item indices from a shared
//! atomic counter and stash `(index, result)` pairs locally; results are
//! merged back into index order after all workers join. Which worker
//! computes which item varies with scheduling, but each item's computation
//! is self-contained, so the returned `Vec` is identical for any job count
//! — including `jobs == 1`, which runs inline on the caller's thread.
//!
//! The observability layer leans on this same guarantee: `rig::obs` merges
//! per-run snapshots by walking the returned `Vec` in order, so the merged
//! counters, histograms and labelled event logs are in deterministic spec
//! order — and therefore bit-identical across job counts — precisely
//! because this function returns index-ordered results.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default job count used by [`default_jobs`]; 0 = "auto"
/// (use [`available_jobs`]).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Number of hardware threads available to the process (≥ 1).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the process-wide default job count used by campaigns created with
/// `Campaign::new()`. `0` restores "auto" (all available cores).
///
/// This is the knob behind `repro --jobs N`. Because results are
/// jobs-invariant it only affects wall-clock time, never output.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The process-wide default job count: the value installed by
/// [`set_default_jobs`], or [`available_jobs`] when unset.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => available_jobs(),
        n => n,
    }
}

/// Maps `f` over `items` using up to `jobs` worker threads, returning the
/// results in item order.
///
/// `f` receives `(index, &item)` so callers can derive per-item seeds from
/// the position. Work is distributed dynamically (atomic next-index
/// counter), so long and short items interleave without a static-partition
/// straggler; the output order is by construction independent of the
/// distribution.
///
/// With `jobs <= 1` (or fewer than two items) everything runs inline on
/// the calling thread — handy both as the reference for determinism tests
/// and to avoid nested thread pools when a parallel job itself calls a
/// campaign.
pub fn parallel_map_indexed<I, T, F>(items: &[I], jobs: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    if jobs <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let workers = jobs.min(items.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                local
            }));
        }
        for handle in handles {
            // A panic in `f` propagates here, mirroring inline execution.
            for (i, value) in handle.join().expect("campaign worker panicked") {
                slots[i] = Some(value);
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = parallel_map_indexed(&items, 8, |i, &x| x * 2 + i as u64);
        let expect: Vec<u64> = (0..97).map(|x| x * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn identical_for_any_job_count() {
        let items: Vec<u64> = (0..40).collect();
        let run = |jobs| {
            parallel_map_indexed(&items, jobs, |i, &x| {
                // A spin of work with data-dependent length so scheduling
                // actually varies between runs.
                let mut acc = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for _ in 0..(x % 7) * 1000 {
                    acc = acc.rotate_left(7) ^ i as u64;
                }
                acc
            })
        };
        let serial = run(1);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(run(jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_indexed(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map_indexed(&[5u32], 4, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn default_jobs_roundtrip() {
        assert!(available_jobs() >= 1);
        // Don't assume the global is untouched; restore whatever was there.
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
