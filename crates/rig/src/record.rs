//! Push-based recording: columnar trace storage, streaming reducers and
//! composable sinks.
//!
//! The paper's evaluation is fundamentally long-duration — the prototype
//! logged for months in the potable-water station — so the recording layer
//! must *stream*, not hoard. [`LineRunner::run_with`] pushes every
//! [`TraceSample`] into a [`Recorder`]; what happens to the sample is the
//! sink's business:
//!
//! * [`TraceStore`] — the full-trace sink: a columnar struct-of-arrays
//!   store with cheap per-channel slices and `partition_point` window
//!   lookups (samples are time-ordered by construction);
//! * [`RunReductions`] — streaming reducers: settled-window Welford
//!   statistics, extra per-window Welfords, min/max/last, supply-code and
//!   physics peaks, error statistics against truth, and a bounded
//!   [`SeriesReducer`] window for rise-time analysis — everything the
//!   experiments consume, computed in O(1) memory per sample;
//! * [`CsvSink`] — renders rows as they arrive, without materializing;
//! * [`Tee`] — fans one run out to two sinks.
//!
//! [`PolicyRecorder`] combines a [`TraceStore`] and [`RunReductions`]
//! under a per-spec [`RecordPolicy`], so sweep-style experiments
//! (`RecordPolicy::MetricsOnly`) never hold raw samples at all while
//! figure-producing experiments keep the full series.
//!
//! # Determinism
//!
//! Streaming reductions fold samples in recording order — the same order a
//! post-hoc pass over a full trace sees — so every reduced statistic is
//! **bit-identical** to the equivalent reduction over a
//! [`RecordPolicy::Full`] store of the same spec, at any `--jobs` count.
//! `tests/record_equivalence.rs` asserts this for every metric the
//! experiments use, fault schedules included.
//!
//! [`LineRunner::run_with`]: crate::runner::LineRunner::run_with

use crate::metrics::Welford;
use crate::runner::TraceSample;
use hotwire_core::HealthState;
use std::ops::Range;

/// The CSV header shared by [`CsvSink`] and `Trace::to_csv`.
pub const CSV_HEADER: &str =
    "t_s,true_cm_s,dut_cm_s,promag_cm_s,turbine_cm_s,supply_code,bubble_coverage,fouling_um,fault,health\n";

/// A sink that [`LineRunner::run_with`] pushes each recorded sample into.
///
/// Implementations must be order-sensitive-safe: samples arrive exactly
/// once, in time order.
///
/// [`LineRunner::run_with`]: crate::runner::LineRunner::run_with
pub trait Recorder {
    /// Receives one recorded sample.
    fn record(&mut self, sample: &TraceSample);
}

impl<R: Recorder + ?Sized> Recorder for &mut R {
    fn record(&mut self, sample: &TraceSample) {
        (**self).record(sample);
    }
}

/// Fans one run out to two sinks (nest for more).
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Recorder, B: Recorder> Recorder for Tee<A, B> {
    fn record(&mut self, sample: &TraceSample) {
        self.0.record(sample);
        self.1.record(sample);
    }
}

/// A numeric trace channel, for generic per-instrument reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// True bulk velocity (cm/s).
    Truth,
    /// Device-under-test conditioned velocity (cm/s).
    Dut,
    /// Promag 50 reference (cm/s).
    Promag,
    /// Turbine reference (cm/s).
    Turbine,
}

/// Columnar (struct-of-arrays) storage for recorded samples.
///
/// The full-trace sink: every channel lives in its own contiguous `Vec`,
/// so per-channel reductions read a dense `&[f64]` instead of striding
/// through an array of structs, and window lookups are `partition_point`
/// binary searches over the time column (samples are recorded in time
/// order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStore {
    t: Vec<f64>,
    true_cm_s: Vec<f64>,
    dut_cm_s: Vec<f64>,
    promag_cm_s: Vec<f64>,
    turbine_cm_s: Vec<f64>,
    supply_code: Vec<u32>,
    bubble_coverage: Vec<f64>,
    fouling_um: Vec<f64>,
    fault: Vec<bool>,
    health: Vec<HealthState>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// An empty store with room for `n` samples in every column.
    pub fn with_capacity(n: usize) -> Self {
        TraceStore {
            t: Vec::with_capacity(n),
            true_cm_s: Vec::with_capacity(n),
            dut_cm_s: Vec::with_capacity(n),
            promag_cm_s: Vec::with_capacity(n),
            turbine_cm_s: Vec::with_capacity(n),
            supply_code: Vec::with_capacity(n),
            bubble_coverage: Vec::with_capacity(n),
            fouling_um: Vec::with_capacity(n),
            fault: Vec::with_capacity(n),
            health: Vec::with_capacity(n),
        }
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether the store holds no samples.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Appends one sample (equivalent to [`Recorder::record`]).
    pub fn push(&mut self, s: &TraceSample) {
        self.t.push(s.t);
        self.true_cm_s.push(s.true_cm_s);
        self.dut_cm_s.push(s.dut_cm_s);
        self.promag_cm_s.push(s.promag_cm_s);
        self.turbine_cm_s.push(s.turbine_cm_s);
        self.supply_code.push(s.supply_code);
        self.bubble_coverage.push(s.bubble_coverage);
        self.fouling_um.push(s.fouling_um);
        self.fault.push(s.fault);
        self.health.push(s.health);
    }

    /// Reassembles sample `i` as a row (`None` past the end).
    pub fn get(&self, i: usize) -> Option<TraceSample> {
        if i >= self.len() {
            return None;
        }
        Some(TraceSample {
            t: self.t[i],
            true_cm_s: self.true_cm_s[i],
            dut_cm_s: self.dut_cm_s[i],
            promag_cm_s: self.promag_cm_s[i],
            turbine_cm_s: self.turbine_cm_s[i],
            supply_code: self.supply_code[i],
            bubble_coverage: self.bubble_coverage[i],
            fouling_um: self.fouling_um[i],
            fault: self.fault[i],
            health: self.health[i],
        })
    }

    /// The last stored sample, if any.
    pub fn last(&self) -> Option<TraceSample> {
        self.len().checked_sub(1).and_then(|i| self.get(i))
    }

    /// Row-wise iterator (samples reassembled by value).
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter {
            store: self,
            front: 0,
            back: self.len(),
        }
    }

    /// Index range of the samples with `t0 <= t < t1`, found by
    /// `partition_point` binary search over the time column (samples are
    /// time-ordered by construction).
    pub fn window(&self, t0: f64, t1: f64) -> Range<usize> {
        let start = self.t.partition_point(|&t| t < t0);
        let end = self.t.partition_point(|&t| t < t1);
        start..end.max(start)
    }

    /// The time column.
    pub fn ts(&self) -> &[f64] {
        &self.t
    }

    /// The DUT velocity column (cm/s).
    pub fn dut(&self) -> &[f64] {
        &self.dut_cm_s
    }

    /// The true-velocity column (cm/s).
    pub fn truth(&self) -> &[f64] {
        &self.true_cm_s
    }

    /// The Promag 50 column (cm/s).
    pub fn promag(&self) -> &[f64] {
        &self.promag_cm_s
    }

    /// The turbine column (cm/s).
    pub fn turbine(&self) -> &[f64] {
        &self.turbine_cm_s
    }

    /// The supply-DAC code column.
    pub fn supply_codes(&self) -> &[u32] {
        &self.supply_code
    }

    /// The worst-heater bubble-coverage column (0..=1).
    pub fn bubble(&self) -> &[f64] {
        &self.bubble_coverage
    }

    /// The worst-heater fouling-thickness column (µm).
    pub fn fouling(&self) -> &[f64] {
        &self.fouling_um
    }

    /// The per-sample fault-flag column.
    pub fn faults(&self) -> &[bool] {
        &self.fault
    }

    /// The health-state column.
    pub fn health(&self) -> &[HealthState] {
        &self.health
    }

    /// A velocity channel as a dense slice.
    pub fn channel(&self, c: Channel) -> &[f64] {
        match c {
            Channel::Truth => &self.true_cm_s,
            Channel::Dut => &self.dut_cm_s,
            Channel::Promag => &self.promag_cm_s,
            Channel::Turbine => &self.turbine_cm_s,
        }
    }

    /// The DUT series over `[t0, t1)` as a slice (no copy).
    pub fn dut_in(&self, t0: f64, t1: f64) -> &[f64] {
        &self.dut_cm_s[self.window(t0, t1)]
    }

    /// The time column over `[t0, t1)` as a slice (no copy).
    pub fn ts_in(&self, t0: f64, t1: f64) -> &[f64] {
        &self.t[self.window(t0, t1)]
    }

    /// Streaming statistics of the DUT series over `[t0, t1)`.
    pub fn window_stats(&self, t0: f64, t1: f64) -> Welford {
        self.dut_in(t0, t1).iter().copied().collect()
    }

    /// Heap bytes held by the column vectors (capacity, not length) — the
    /// store's contribution to a run's peak trace memory.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.t.capacity() * size_of::<f64>() * 7
            + self.supply_code.capacity() * size_of::<u32>()
            + self.fault.capacity() * size_of::<bool>()
            + self.health.capacity() * size_of::<HealthState>()
    }
}

impl Recorder for TraceStore {
    fn record(&mut self, sample: &TraceSample) {
        self.push(sample);
    }
}

/// Row-wise iterator over a [`TraceStore`], yielding samples by value.
#[derive(Debug, Clone)]
pub struct TraceIter<'a> {
    store: &'a TraceStore,
    front: usize,
    back: usize,
}

impl Iterator for TraceIter<'_> {
    type Item = TraceSample;

    fn next(&mut self) -> Option<TraceSample> {
        if self.front >= self.back {
            return None;
        }
        let s = self.store.get(self.front);
        self.front += 1;
        s
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl DoubleEndedIterator for TraceIter<'_> {
    fn next_back(&mut self) -> Option<TraceSample> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        self.store.get(self.back)
    }
}

impl ExactSizeIterator for TraceIter<'_> {}

impl<'a> IntoIterator for &'a TraceStore {
    type Item = TraceSample;
    type IntoIter = TraceIter<'a>;

    fn into_iter(self) -> TraceIter<'a> {
        self.iter()
    }
}

/// Renders samples as CSV rows on arrival, without materializing a trace.
#[derive(Debug, Clone)]
pub struct CsvSink {
    out: String,
}

impl CsvSink {
    /// A sink holding only the header row.
    pub fn new() -> Self {
        CsvSink {
            out: CSV_HEADER.to_string(),
        }
    }

    /// A sink pre-sized for `rows` data rows (~64 bytes per formatted row,
    /// so the export runs in a handful of reallocations instead of
    /// O(log n) doublings over megabyte-scale traces).
    pub fn with_capacity(rows: usize) -> Self {
        let mut out = String::with_capacity(CSV_HEADER.len() + rows * 64);
        out.push_str(CSV_HEADER);
        CsvSink { out }
    }

    /// The rendered CSV (header + one row per recorded sample).
    pub fn into_string(self) -> String {
        self.out
    }
}

impl Default for CsvSink {
    fn default() -> Self {
        CsvSink::new()
    }
}

impl Recorder for CsvSink {
    fn record(&mut self, s: &TraceSample) {
        use std::fmt::Write as _;
        let _ = writeln!(
            self.out,
            "{:.4},{:.3},{:.3},{:.3},{:.3},{},{:.4},{:.3},{},{}",
            s.t,
            s.true_cm_s,
            s.dut_cm_s,
            s.promag_cm_s,
            s.turbine_cm_s,
            s.supply_code,
            s.bubble_coverage,
            s.fouling_um,
            u8::from(s.fault),
            s.health.code(),
        );
    }
}

/// What a [`RunSpec`](crate::campaign::RunSpec) keeps of its raw samples.
///
/// Streaming reductions ([`RunReductions`]) are computed under every
/// policy — the policy only controls what lands in the stored trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordPolicy {
    /// Keep every sample (the historical behavior; required by
    /// figure-producing experiments that print or re-scan the series).
    #[default]
    Full,
    /// Keep only the samples inside the spec's settled window.
    SettledWindowOnly,
    /// Keep no samples at all — O(1) trace memory; everything the run
    /// reports must come from the streaming reductions.
    MetricsOnly,
    /// Keep every n-th sample (a plotting-density trace; `Decimated(1)`
    /// ≡ `Full`, `Decimated(0)` is treated as 1).
    Decimated(u32),
}

/// Which samples feed each streaming reduction — derived from the spec's
/// windows by the campaign layer.
///
/// All windows are half-open `[t0, t1)`, matching
/// [`TraceStore::window_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionPlan {
    /// The settled window for the primary DUT statistics.
    pub settle: (f64, f64),
    /// Extra DUT Welford windows (e.g. per-visit repeatability windows).
    pub windows: Vec<(f64, f64)>,
    /// If set, retain the `(t, dut)` series inside this window for
    /// rise-time analysis (bounded by the window, not the run length).
    pub series: Option<(f64, f64)>,
    /// If set, accumulate DUT-vs-truth error statistics over this window.
    pub err: Option<(f64, f64)>,
}

impl Default for ReductionPlan {
    fn default() -> Self {
        ReductionPlan {
            settle: (0.0, f64::INFINITY),
            windows: Vec::new(),
            series: None,
            err: None,
        }
    }
}

/// Per-[`HealthState`] sample counts — the streaming census of how much
/// simulated line-time the firmware supervisor spent in each state.
///
/// Indexed by [`HealthState::code`], so the census merges across runs (and
/// across fleet lines) with plain integer addition — deterministic in any
/// merge order that is itself deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCensus {
    /// Sample counts per state, indexed by [`HealthState::code`].
    pub counts: [u64; 4],
}

impl HealthCensus {
    /// Counts one sample observed in `state`.
    pub fn record(&mut self, state: HealthState) {
        self.counts[state.code() as usize] += 1;
    }

    /// Adds another census's counts into this one.
    pub fn merge(&mut self, other: &HealthCensus) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Samples observed in `state`.
    pub fn count(&self, state: HealthState) -> u64 {
        self.counts[state.code() as usize]
    }

    /// Total samples observed across all states.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of observed samples spent in `state` (`NaN` when the
    /// census is empty).
    pub fn fraction(&self, state: HealthState) -> f64 {
        self.count(state) as f64 / self.total() as f64
    }
}

/// A bounded `(t, y)` series retained over one window — the streaming
/// input to [`rise_time_split`](crate::metrics::rise_time_split) and
/// friends. Memory is O(window samples), independent of the run length.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesReducer {
    /// Sample times inside the window, seconds.
    pub ts: Vec<f64>,
    /// DUT readings at those times, cm/s.
    pub ys: Vec<f64>,
}

impl SeriesReducer {
    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the window retained nothing.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }
}

/// Streaming reductions over one run — every statistic the experiments
/// consume, folded sample-by-sample in recording order so each is
/// bit-identical to the same reduction over a full stored trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReductions {
    plan: ReductionPlan,
    /// Total samples recorded (under any policy).
    pub samples: u64,
    /// DUT statistics over the plan's settled window.
    pub settled: Welford,
    /// DUT statistics over each of the plan's extra windows, in order.
    pub windows: Vec<Welford>,
    /// Smallest DUT reading seen (`+∞` when no samples).
    pub dut_min: f64,
    /// Largest DUT reading seen (`−∞` when no samples).
    pub dut_max: f64,
    /// Largest supply-DAC code commanded.
    pub supply_code_max: u32,
    /// Peak worst-heater bubble coverage (0..=1).
    pub bubble_peak: f64,
    /// Peak worst-heater CaCO₃ thickness, µm.
    pub fouling_peak: f64,
    /// Number of samples with any fault flag raised.
    pub fault_samples: u64,
    /// Per-[`HealthState`] sample census over the whole run.
    pub health_census: HealthCensus,
    /// `(t, dut)` series retained over the plan's series window.
    pub series: SeriesReducer,
    /// Worst |dut − truth| over the plan's error window.
    pub err_max_abs: f64,
    err_sq_sum: f64,
    err_count: u64,
    /// The last recorded sample, if any.
    pub last: Option<TraceSample>,
}

impl RunReductions {
    /// Empty reductions for `plan`.
    pub fn new(plan: ReductionPlan) -> Self {
        let windows = vec![Welford::new(); plan.windows.len()];
        RunReductions {
            plan,
            samples: 0,
            settled: Welford::new(),
            windows,
            dut_min: f64::INFINITY,
            dut_max: f64::NEG_INFINITY,
            supply_code_max: 0,
            bubble_peak: 0.0,
            fouling_peak: 0.0,
            fault_samples: 0,
            health_census: HealthCensus::default(),
            series: SeriesReducer::default(),
            err_max_abs: 0.0,
            err_sq_sum: 0.0,
            err_count: 0,
            last: None,
        }
    }

    /// The plan these reductions were folded under.
    pub fn plan(&self) -> &ReductionPlan {
        &self.plan
    }

    /// RMS of dut − truth over the error window (`NaN` when the window
    /// saw no samples, matching [`rms_error`](crate::metrics::rms_error)'s
    /// empty ⇒ `NaN` convention).
    pub fn err_rms(&self) -> f64 {
        if self.err_count == 0 {
            return f64::NAN;
        }
        (self.err_sq_sum / self.err_count as f64).sqrt()
    }

    /// Samples seen by the error window.
    pub fn err_count(&self) -> u64 {
        self.err_count
    }
}

impl Default for RunReductions {
    fn default() -> Self {
        RunReductions::new(ReductionPlan::default())
    }
}

impl Recorder for RunReductions {
    fn record(&mut self, s: &TraceSample) {
        self.samples += 1;
        if s.t >= self.plan.settle.0 && s.t < self.plan.settle.1 {
            self.settled.push(s.dut_cm_s);
        }
        for (w, &(t0, t1)) in self.windows.iter_mut().zip(&self.plan.windows) {
            if s.t >= t0 && s.t < t1 {
                w.push(s.dut_cm_s);
            }
        }
        self.dut_min = self.dut_min.min(s.dut_cm_s);
        self.dut_max = self.dut_max.max(s.dut_cm_s);
        self.supply_code_max = self.supply_code_max.max(s.supply_code);
        self.bubble_peak = self.bubble_peak.max(s.bubble_coverage);
        self.fouling_peak = self.fouling_peak.max(s.fouling_um);
        self.fault_samples += u64::from(s.fault);
        self.health_census.record(s.health);
        if let Some((t0, t1)) = self.plan.series {
            if s.t >= t0 && s.t < t1 {
                self.series.ts.push(s.t);
                self.series.ys.push(s.dut_cm_s);
            }
        }
        if let Some((t0, t1)) = self.plan.err {
            if s.t >= t0 && s.t < t1 {
                let e = s.dut_cm_s - s.true_cm_s;
                self.err_sq_sum += e * e;
                self.err_max_abs = self.err_max_abs.max(e.abs());
                self.err_count += 1;
            }
        }
        self.last = Some(*s);
    }
}

/// The campaign layer's recorder: folds every sample into
/// [`RunReductions`] and stores rows per the spec's [`RecordPolicy`].
#[derive(Debug)]
pub struct PolicyRecorder {
    policy: RecordPolicy,
    reductions: RunReductions,
    store: TraceStore,
    seen: u64,
}

impl PolicyRecorder {
    /// A recorder applying `policy` with reductions folded under `plan`.
    pub fn new(policy: RecordPolicy, plan: ReductionPlan) -> Self {
        PolicyRecorder {
            policy,
            reductions: RunReductions::new(plan),
            store: TraceStore::new(),
            seen: 0,
        }
    }

    /// Pre-sizes the store for a run expected to record `samples` rows,
    /// scaled by what the policy will actually keep.
    pub fn reserve(&mut self, samples: usize) {
        let keep = match self.policy {
            RecordPolicy::Full | RecordPolicy::SettledWindowOnly => samples,
            RecordPolicy::MetricsOnly => 0,
            RecordPolicy::Decimated(n) => samples / n.max(1) as usize + 1,
        };
        if keep > 0 {
            self.store = TraceStore::with_capacity(keep);
        }
    }

    /// Tears the recorder down into its stored trace and reductions.
    pub fn finish(self) -> (TraceStore, RunReductions) {
        (self.store, self.reductions)
    }
}

impl Recorder for PolicyRecorder {
    fn record(&mut self, s: &TraceSample) {
        self.reductions.record(s);
        let keep = match self.policy {
            RecordPolicy::Full => true,
            RecordPolicy::SettledWindowOnly => {
                let (t0, t1) = self.reductions.plan.settle;
                s.t >= t0 && s.t < t1
            }
            RecordPolicy::MetricsOnly => false,
            RecordPolicy::Decimated(n) => self.seen % u64::from(n.max(1)) == 0,
        };
        self.seen += 1;
        if keep {
            self.store.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, dut: f64) -> TraceSample {
        TraceSample {
            t,
            true_cm_s: 100.0,
            dut_cm_s: dut,
            promag_cm_s: 100.0,
            turbine_cm_s: 100.0,
            supply_code: (dut * 10.0) as u32,
            bubble_coverage: 0.0,
            fouling_um: 0.0,
            fault: false,
            health: HealthState::Healthy,
        }
    }

    fn store_of(samples: &[TraceSample]) -> TraceStore {
        let mut store = TraceStore::new();
        for s in samples {
            store.record(s);
        }
        store
    }

    #[test]
    fn window_uses_partition_point_bounds() {
        let samples: Vec<TraceSample> = (0..100).map(|i| sample(i as f64 * 0.1, 100.0)).collect();
        let store = store_of(&samples);
        // [2.0, 4.0) → indices 20..40: t = 2.0..3.9.
        let w = store.window(2.0, 4.0);
        assert_eq!(w, 20..40);
        assert_eq!(store.ts_in(2.0, 4.0).len(), 20);
        // Same membership as the linear filter.
        let linear: Vec<f64> = samples
            .iter()
            .filter(|s| s.t >= 2.0 && s.t < 4.0)
            .map(|s| s.dut_cm_s)
            .collect();
        assert_eq!(store.dut_in(2.0, 4.0), &linear[..]);
        // Degenerate windows are empty, not panicking.
        assert!(store.window(5.0, 5.0).is_empty());
        assert!(store.window(4.0, 2.0).is_empty());
        assert!(store.window(50.0, 60.0).is_empty());
    }

    #[test]
    fn row_iteration_round_trips() {
        let samples: Vec<TraceSample> =
            (0..10).map(|i| sample(i as f64, 50.0 + i as f64)).collect();
        let store = store_of(&samples);
        assert_eq!(store.len(), 10);
        let back: Vec<TraceSample> = store.iter().collect();
        assert_eq!(back, samples);
        assert_eq!(store.last(), samples.last().copied());
        assert_eq!(store.get(3), Some(samples[3]));
        assert_eq!(store.get(10), None);
        // Double-ended iteration agrees.
        let rev: Vec<TraceSample> = store.iter().rev().collect();
        let mut expect = samples.clone();
        expect.reverse();
        assert_eq!(rev, expect);
    }

    #[test]
    fn streaming_reductions_match_post_hoc() {
        let samples: Vec<TraceSample> = (0..200)
            .map(|i| sample(i as f64 * 0.05, 90.0 + (i % 7) as f64))
            .collect();
        let plan = ReductionPlan {
            settle: (2.0, 8.0),
            windows: vec![(0.0, 1.0), (9.0, 10.0)],
            series: Some((4.0, 6.0)),
            err: Some((5.0, f64::INFINITY)),
        };
        let mut red = RunReductions::new(plan.clone());
        let mut store = TraceStore::new();
        for s in &samples {
            red.record(s);
            store.record(s);
        }
        // Settled and extra windows: bit-identical to post-hoc Welfords.
        assert_eq!(red.settled, store.window_stats(2.0, 8.0));
        assert_eq!(red.windows[0], store.window_stats(0.0, 1.0));
        assert_eq!(red.windows[1], store.window_stats(9.0, 10.0));
        // Series window retains exactly the windowed columns.
        assert_eq!(&red.series.ts[..], store.ts_in(4.0, 6.0));
        assert_eq!(&red.series.ys[..], store.dut_in(4.0, 6.0));
        // Error stats match a post-hoc pass in the same order.
        let w = store.window(5.0, f64::INFINITY);
        let pairs: Vec<(f64, f64)> = w
            .clone()
            .map(|i| (store.truth()[i], store.dut()[i]))
            .collect();
        let rms =
            crate::metrics::rms_error(&pairs.iter().map(|&(t, d)| (d, t)).collect::<Vec<_>>());
        assert_eq!(red.err_rms().to_bits(), rms.to_bits());
        assert_eq!(red.err_count(), pairs.len() as u64);
        assert_eq!(red.samples, samples.len() as u64);
        assert_eq!(red.last, samples.last().copied());
    }

    #[test]
    fn policies_control_what_lands_in_the_store() {
        let samples: Vec<TraceSample> = (0..100).map(|i| sample(i as f64 * 0.1, 100.0)).collect();
        let plan = ReductionPlan {
            settle: (2.0, 4.0),
            ..ReductionPlan::default()
        };
        let run = |policy: RecordPolicy| {
            let mut rec = PolicyRecorder::new(policy, plan.clone());
            rec.reserve(samples.len());
            for s in &samples {
                rec.record(s);
            }
            rec.finish()
        };
        let (full, full_red) = run(RecordPolicy::Full);
        assert_eq!(full.len(), 100);
        let (settled, _) = run(RecordPolicy::SettledWindowOnly);
        assert_eq!(settled.len(), 20);
        assert_eq!(settled.ts(), full.ts_in(2.0, 4.0));
        let (none, none_red) = run(RecordPolicy::MetricsOnly);
        assert_eq!(none.len(), 0);
        assert_eq!(none.heap_bytes(), 0);
        let (dec, _) = run(RecordPolicy::Decimated(10));
        assert_eq!(dec.len(), 10);
        assert_eq!(dec.ts()[1], full.ts()[10]);
        // Reductions are policy-independent.
        assert_eq!(full_red, none_red);
        // Decimated(0) degrades to keep-everything rather than dividing
        // by zero.
        let (d0, _) = run(RecordPolicy::Decimated(0));
        assert_eq!(d0.len(), 100);
    }

    #[test]
    fn health_census_counts_every_sample() {
        let mut red = RunReductions::default();
        let states = [
            HealthState::Healthy,
            HealthState::Healthy,
            HealthState::Degraded,
            HealthState::Faulted,
            HealthState::Recovering,
            HealthState::Healthy,
        ];
        for (i, &h) in states.iter().enumerate() {
            let mut s = sample(i as f64, 100.0);
            s.health = h;
            red.record(&s);
        }
        let census = red.health_census;
        assert_eq!(census.total(), states.len() as u64);
        assert_eq!(census.count(HealthState::Healthy), 3);
        assert_eq!(census.count(HealthState::Degraded), 1);
        assert_eq!(census.count(HealthState::Faulted), 1);
        assert_eq!(census.count(HealthState::Recovering), 1);
        assert!((census.fraction(HealthState::Healthy) - 0.5).abs() < 1e-12);
        // Merging is plain addition.
        let mut merged = census;
        merged.merge(&census);
        assert_eq!(merged.total(), 2 * census.total());
        assert_eq!(merged.count(HealthState::Degraded), 2);
    }

    #[test]
    fn csv_sink_matches_store_export() {
        let samples: Vec<TraceSample> = (0..5).map(|i| sample(i as f64, 42.0)).collect();
        let mut sink = CsvSink::with_capacity(samples.len());
        let mut store = TraceStore::new();
        let mut tee = Tee(&mut sink, &mut store);
        for s in &samples {
            tee.record(s);
        }
        let streamed = sink.into_string();
        assert_eq!(streamed.lines().count(), samples.len() + 1);
        assert!(streamed.starts_with("t_s,true_cm_s"));
        for row in streamed.lines().skip(1) {
            assert_eq!(row.split(',').count(), 10, "row `{row}`");
        }
        assert_eq!(store.len(), samples.len());
    }
}
