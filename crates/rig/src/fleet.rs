//! The fleet engine: thousands of concurrent simulated lines behind one
//! declarative spec.
//!
//! The paper's end game is not one water station but a *network* of them —
//! "a smart water grid scenario" where every line carries the same MEMS
//! probe and the operator asks population questions: what resolution does
//! the 99th-percentile meter deliver, how much of the fleet's simulated
//! time was spent degraded, which fault classes actually bite in the
//! field? A [`Campaign`](crate::Campaign) answers per-run questions;
//! [`FleetSpec`] scales the same machinery to populations.
//!
//! # Shape
//!
//! A [`FleetSpec`] is a *template*: one meter configuration, one scenario,
//! one [`Windows`] plan — plus a line count and a [`LineVariation`]
//! describing how individual lines differ (independent component
//! tolerances and turbulence via derived seeds, optional flow-demand
//! jitter, optional fault schedules on a strided subset). Calling
//! [`FleetSpec::run`] stamps out one [`RunSpec`] per line, executes them
//! in fixed-size batches over the deterministic scoped-thread pool
//! ([`exec::parallel_map_indexed`]), and folds each finished line into a
//! compact [`LineSummary`] **inside the worker** — the trace, meter and
//! event log die with the run, so fleet memory is O(lines), never
//! O(samples).
//!
//! Every line is forced to [`RecordPolicy::MetricsOnly`]: the streaming
//! reductions (`rig::record`) carry everything the aggregates need, and
//! the per-line trace heap is **zero bytes** by construction —
//! [`FleetOutcome::trace_heap_bytes`] reports the measured total so tests
//! can pin it.
//!
//! # Determinism
//!
//! Line `i`'s spec is a pure function of the fleet spec and `i` (seeds via
//! [`derive_seed`], jitter from the same stream), each line runs
//! single-threaded, batches merge in line order, and the aggregation fold
//! visits summaries in line order. The whole [`FleetOutcome`] is therefore
//! bit-for-bit identical at any `--jobs` count — the same guarantee the
//! campaign layer makes, lifted to populations.
//!
//! ```no_run
//! use hotwire_core::FlowMeterConfig;
//! use hotwire_rig::fleet::{FleetSpec, LineVariation};
//! use hotwire_rig::{Scenario, Windows};
//!
//! let fleet = FleetSpec::new(
//!     "district-7",
//!     FlowMeterConfig::test_profile(),
//!     Scenario::steady(100.0, 4.0),
//!     0xF1EE7,
//! )
//! .with_lines(1000)
//! .with_windows(Windows::settled(2.0, 2.0).with_err(2.0, f64::INFINITY))
//! .with_variation(LineVariation::new().with_flow_jitter(0.05));
//! let outcome = fleet.run()?;
//! println!("{}", outcome.aggregates);
//! assert_eq!(outcome.trace_heap_bytes(), 0);
//! # Ok::<(), hotwire_core::CoreError>(())
//! ```

use std::collections::BTreeMap;

use crate::campaign::{derive_seed, Calibration, RunOutcome, RunSpec, Windows};
use crate::exec;
use crate::fault::FaultSchedule;
use crate::metrics;
use crate::record::{HealthCensus, RecordPolicy};
use crate::scenario::Scenario;
use hotwire_core::config::AfeTier;
use hotwire_core::{CoreError, FlowMeterConfig};
use hotwire_physics::MafParams;

/// Fault schedules applied to a strided subset of a fleet's lines.
///
/// Every `stride`-th line (phase `offset`) receives a copy of `schedule`
/// with a line-derived seed, so the *timing and kinds* repeat across the
/// afflicted subset while the stochastic fault content (corrupted bytes,
/// flipped bits) stays independent per line.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTemplate {
    /// Apply the schedule to lines where `i % stride == offset`.
    pub stride: usize,
    /// Phase of the afflicted subset (`offset < stride`).
    pub offset: usize,
    /// The event timeline to copy onto each afflicted line (its `seed` is
    /// replaced by a per-line derived seed).
    pub schedule: FaultSchedule,
}

impl FaultTemplate {
    /// Whether line `i` is in the afflicted subset.
    pub fn applies_to(&self, line: usize) -> bool {
        let stride = self.stride.max(1);
        line % stride == self.offset % stride
    }
}

/// How individual lines of a fleet differ from the template.
///
/// Component-tolerance and turbulence diversity is automatic — every line
/// gets independent meter and line seeds derived from the fleet seed — so
/// the default variation already models a population of distinct physical
/// meters on distinct physical lines. The knobs here add *environmental*
/// diversity on top.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LineVariation {
    /// Per-line flow-demand jitter: line `i`'s flow schedule is the
    /// template's scaled by a deterministic uniform factor in
    /// `[1 − j, 1 + j]` ([`Schedule::scaled`](crate::Schedule::scaled)).
    /// `0.0` (default) = every line sees the template demand.
    pub flow_jitter: f64,
    /// Optional fault schedules on a strided subset of lines.
    pub faults: Option<FaultTemplate>,
}

impl LineVariation {
    /// No variation beyond the automatic per-line seed diversity.
    pub fn new() -> Self {
        LineVariation::default()
    }

    /// Sets the per-line flow-demand jitter fraction (e.g. `0.05` = each
    /// line's demand uniformly within ±5 % of the template).
    #[must_use]
    pub fn with_flow_jitter(mut self, fraction: f64) -> Self {
        self.flow_jitter = fraction;
        self
    }

    /// Applies `schedule` to every `stride`-th line (starting at line
    /// `offset`), each copy reseeded per line.
    #[must_use]
    pub fn with_faults_every(
        mut self,
        stride: usize,
        offset: usize,
        schedule: FaultSchedule,
    ) -> Self {
        self.faults = Some(FaultTemplate {
            stride,
            offset,
            schedule,
        });
        self
    }
}

/// Seed-stream tags keeping the per-line derived seeds statistically
/// independent of each other (same `derive_seed` base, disjoint index
/// lanes).
const LANE_METER: u64 = 0;
const LANE_LINE: u64 = 1;
const LANE_JITTER: u64 = 2;
const LANE_FAULT: u64 = 3;
const LANES: u64 = 4;

/// A declarative description of a whole fleet of simulated lines.
///
/// See the [module docs](self) for the execution and determinism story.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Fleet label, carried into per-line labels and reports.
    pub label: String,
    /// Meter configuration shared by every line.
    pub config: FlowMeterConfig,
    /// Die parameters shared by every line (tolerances still vary per line
    /// through the derived meter seeds).
    pub params: MafParams,
    /// Scenario template (per-line flow jitter applies on top).
    pub scenario: Scenario,
    /// Calibration applied to every line's meter.
    pub calibration: Calibration,
    /// Reduction windows shared by every line.
    pub windows: Windows,
    /// Trace cadence, seconds per sample.
    pub sample_period_s: f64,
    /// Number of lines in the fleet.
    pub lines: usize,
    /// Lines dispatched to the thread pool per batch (bounds peak
    /// in-flight spec/outcome memory; result-invariant).
    pub batch_size: usize,
    /// Fleet-level seed; every per-line seed derives from it.
    pub seed: u64,
    /// How lines differ from the template.
    pub variation: LineVariation,
}

impl FleetSpec {
    /// A fleet of 100 healthy lines on the template scenario, factory
    /// calibration, 20 ms cadence, batches of 256.
    pub fn new(
        label: impl Into<String>,
        config: FlowMeterConfig,
        scenario: Scenario,
        seed: u64,
    ) -> Self {
        FleetSpec {
            label: label.into(),
            config,
            params: MafParams::nominal(),
            scenario,
            calibration: Calibration::Factory,
            windows: Windows::default(),
            sample_period_s: 0.02,
            lines: 100,
            batch_size: 256,
            seed,
            variation: LineVariation::default(),
        }
    }

    /// Sets the number of lines.
    #[must_use]
    pub fn with_lines(mut self, lines: usize) -> Self {
        self.lines = lines;
        self
    }

    /// Sets the dispatch batch size (memory knob only — results are
    /// batch-size-invariant).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Sets the reduction windows shared by every line (tuple shorthand
    /// works exactly as on [`RunSpec::with_windows`]).
    #[must_use]
    pub fn with_windows(mut self, windows: impl Into<Windows>) -> Self {
        self.windows = windows.into();
        self
    }

    /// Sets the per-line calibration step.
    #[must_use]
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// Sets the die parameters shared by every line.
    #[must_use]
    pub fn with_params(mut self, params: MafParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the trace cadence.
    #[must_use]
    pub fn with_sample_period(mut self, seconds: f64) -> Self {
        self.sample_period_s = seconds;
        self
    }

    /// Sets how lines differ from the template.
    #[must_use]
    pub fn with_variation(mut self, variation: LineVariation) -> Self {
        self.variation = variation;
        self
    }

    /// Selects the AFE fidelity tier for every line's meter (default
    /// [`AfeTier::Exact`]). [`AfeTier::Fast`] opts the whole fleet into
    /// the quasi-static once-per-frame front end — orders of magnitude
    /// faster, with the error bound pinned by the core tier tests.
    #[must_use]
    pub fn with_afe_tier(mut self, tier: AfeTier) -> Self {
        self.config.afe_tier = tier;
        self
    }

    /// Line `i`'s deterministic flow-jitter factor in
    /// `[1 − j, 1 + j]`.
    fn jitter_factor(&self, line: usize) -> f64 {
        let j = self.variation.flow_jitter;
        if j == 0.0 {
            return 1.0;
        }
        // Uniform in [0, 1) from the line's jitter-lane seed; exact for
        // the 53-bit mantissa (top 53 bits of the 64-bit stream).
        let u = (derive_seed(self.seed, LANES * line as u64 + LANE_JITTER) >> 11) as f64
            / (1u64 << 53) as f64;
        1.0 + j * (2.0 * u - 1.0)
    }

    /// The [`RunSpec`] for line `i` — a pure function of the fleet spec
    /// and the index, which is the whole determinism story: any thread may
    /// execute it at any time and produce the same bits.
    ///
    /// Lines always record at [`RecordPolicy::MetricsOnly`] (fleet memory
    /// stays O(lines)) and run without the observability hot-loop hooks
    /// (at thousands of lines the event logs would dominate the cost of
    /// the simulation itself).
    pub fn line_spec(&self, line: usize) -> RunSpec {
        let i = line as u64;
        let scenario = if self.variation.flow_jitter == 0.0 {
            self.scenario.clone()
        } else {
            self.scenario.with_flow_scaled(self.jitter_factor(line))
        };
        let mut spec = RunSpec::new(
            format!("{}/line-{line:04}", self.label),
            self.config,
            scenario,
            self.seed,
        )
        .with_params(self.params)
        .with_meter_seed(derive_seed(self.seed, LANES * i + LANE_METER))
        .with_line_seed(derive_seed(self.seed, LANES * i + LANE_LINE))
        .with_calibration(self.calibration.clone())
        .with_sample_period(self.sample_period_s)
        .with_windows(self.windows.clone())
        .with_record(RecordPolicy::MetricsOnly)
        .without_obs();
        if let Some(template) = &self.variation.faults {
            if template.applies_to(line) {
                let mut schedule = template.schedule.clone();
                schedule.seed = derive_seed(self.seed, LANES * i + LANE_FAULT);
                spec = spec.with_faults(schedule);
            }
        }
        spec
    }

    /// Executes the fleet with the process-wide default job count
    /// ([`exec::default_jobs`]).
    ///
    /// # Errors
    ///
    /// Returns the first line's [`CoreError`] in line order, if any.
    pub fn run(&self) -> Result<FleetOutcome, CoreError> {
        self.run_jobs(exec::default_jobs())
    }

    /// Executes the fleet with an explicit job count. The outcome is
    /// bit-for-bit identical for any `jobs`, including `1`.
    ///
    /// # Errors
    ///
    /// Returns the first line's [`CoreError`] in line order, if any.
    pub fn run_jobs(&self, jobs: usize) -> Result<FleetOutcome, CoreError> {
        let mut summaries: Vec<LineSummary> = Vec::with_capacity(self.lines);
        let mut batch_start = 0usize;
        while batch_start < self.lines {
            let batch_len = self.batch_size.min(self.lines - batch_start);
            let indices: Vec<usize> = (batch_start..batch_start + batch_len).collect();
            // Summarize inside the worker: the outcome (meter, empty
            // trace, reductions) drops before the next line starts, so
            // in-flight memory is O(batch), retained memory O(lines).
            let batch = exec::parallel_map_indexed(&indices, jobs, |_, &line| {
                let spec = self.line_spec(line);
                let fault_kinds: Vec<&'static str> = spec
                    .faults
                    .as_ref()
                    .map(|s| s.events.iter().map(|e| e.kind.name()).collect())
                    .unwrap_or_default();
                spec.execute()
                    .map(|outcome| LineSummary::from_outcome(line, &outcome, fault_kinds))
            });
            for result in batch {
                summaries.push(result?);
            }
            batch_start += batch_len;
        }
        let aggregates = FleetAggregates::from_summaries(
            &summaries,
            self.config.full_scale.to_cm_per_s(),
            self.scenario.duration_s * self.lines as f64,
        );
        Ok(FleetOutcome {
            label: self.label.clone(),
            aggregates,
            lines: summaries,
        })
    }
}

/// The compact per-line residue a fleet run keeps: what population
/// statistics need, nothing a trace would hold.
#[derive(Debug, Clone, PartialEq)]
pub struct LineSummary {
    /// Line index in the fleet.
    pub line: usize,
    /// Samples recorded (streamed, not stored).
    pub samples: u64,
    /// Settled-window mean, cm/s.
    pub settled_mean: f64,
    /// Settled-window ±σ (the line's resolution), cm/s.
    pub settled_std: f64,
    /// DUT-vs-truth RMS error over the err window, cm/s (`NaN` when the
    /// fleet declares no err window).
    pub err_rms: f64,
    /// Worst |DUT − truth| over the err window, cm/s.
    pub err_max_abs: f64,
    /// Samples recorded while a fault was active.
    pub fault_samples: u64,
    /// Health-state census over the line's simulated time.
    pub health: HealthCensus,
    /// Names of the fault kinds scheduled on this line (empty = healthy
    /// template line).
    pub fault_kinds: Vec<&'static str>,
    /// Bytes of trace sample storage the run held — 0 under the forced
    /// [`RecordPolicy::MetricsOnly`]; summed and pinned by tests.
    pub trace_heap_bytes: usize,
}

impl LineSummary {
    /// Folds one finished run into its summary (everything copied out;
    /// the outcome can drop).
    fn from_outcome(line: usize, outcome: &RunOutcome, fault_kinds: Vec<&'static str>) -> Self {
        let red = &outcome.reduced;
        LineSummary {
            line,
            samples: red.samples,
            settled_mean: red.settled.mean(),
            settled_std: red.settled.std_dev(),
            err_rms: red.err_rms(),
            err_max_abs: red.err_max_abs,
            fault_samples: red.fault_samples,
            health: red.health_census,
            fault_kinds,
            trace_heap_bytes: outcome.trace.samples.heap_bytes(),
        }
    }
}

/// Nearest-rank percentiles of a population statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Smallest value.
    pub min: f64,
    /// 50th percentile (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Largest value.
    pub max: f64,
}

impl Percentiles {
    /// Nearest-rank percentiles of `values` (NaNs sort last via
    /// `total_cmp`, so a NaN min/max means the population had one).
    /// Returns all-NaN for an empty population.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Percentiles {
                min: f64::NAN,
                p50: f64::NAN,
                p90: f64::NAN,
                p99: f64::NAN,
                max: f64::NAN,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |q: f64| -> f64 {
            let n = sorted.len();
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[idx]
        };
        Percentiles {
            min: sorted[0],
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Population-level aggregates of a fleet run, folded in line order
/// (jobs- and batch-size-invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAggregates {
    /// Lines aggregated.
    pub lines: usize,
    /// Total samples streamed across the fleet.
    pub total_samples: u64,
    /// Fleet simulated time, line-seconds.
    pub simulated_s: f64,
    /// Population percentiles of per-line resolution (settled ±σ), % of
    /// full scale.
    pub resolution_pct_fs: Percentiles,
    /// Population percentiles of per-line RMS error, cm/s (all-NaN when
    /// no err window was declared).
    pub err_rms_cm_s: Percentiles,
    /// Line-to-line repeatability: half-spread of the per-line settled
    /// means, % of full scale ([`metrics::repeatability`]).
    pub repeatability_pct_fs: f64,
    /// Health-state census summed over every line's simulated time.
    pub health: HealthCensus,
    /// Lines per scheduled fault kind (a line with two kinds counts once
    /// under each), keyed by [`FaultKind::name`](crate::FaultKind::name).
    pub fault_incidence: BTreeMap<&'static str, u64>,
    /// Lines that recorded at least one faulted sample.
    pub lines_faulted: u64,
    /// Total samples recorded under an active fault.
    pub fault_samples: u64,
    /// Summed per-line trace sample storage, bytes — 0 by construction
    /// under the forced `MetricsOnly` policy.
    pub trace_heap_bytes: usize,
}

impl FleetAggregates {
    /// Folds per-line summaries (visited in slice order — callers pass
    /// line order) into population aggregates.
    pub fn from_summaries(
        summaries: &[LineSummary],
        full_scale_cm_s: f64,
        simulated_s: f64,
    ) -> Self {
        let resolutions: Vec<f64> = summaries
            .iter()
            .map(|s| s.settled_std / full_scale_cm_s * 100.0)
            .collect();
        let err_rms: Vec<f64> = summaries.iter().map(|s| s.err_rms).collect();
        let means: Vec<f64> = summaries.iter().map(|s| s.settled_mean).collect();
        let mut health = HealthCensus::default();
        let mut fault_incidence: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut lines_faulted = 0u64;
        let mut fault_samples = 0u64;
        let mut total_samples = 0u64;
        let mut trace_heap_bytes = 0usize;
        for s in summaries {
            health.merge(&s.health);
            total_samples += s.samples;
            fault_samples += s.fault_samples;
            trace_heap_bytes += s.trace_heap_bytes;
            if s.fault_samples > 0 {
                lines_faulted += 1;
            }
            let mut seen: Vec<&'static str> = Vec::new();
            for &kind in &s.fault_kinds {
                if !seen.contains(&kind) {
                    seen.push(kind);
                    *fault_incidence.entry(kind).or_insert(0) += 1;
                }
            }
        }
        FleetAggregates {
            lines: summaries.len(),
            total_samples,
            simulated_s,
            resolution_pct_fs: Percentiles::of(&resolutions),
            err_rms_cm_s: Percentiles::of(&err_rms),
            repeatability_pct_fs: metrics::repeatability(&means, full_scale_cm_s) * 100.0,
            health,
            fault_incidence,
            lines_faulted,
            fault_samples,
            trace_heap_bytes,
        }
    }
}

impl core::fmt::Display for FleetAggregates {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "{} lines, {} samples, {:.0} line-s simulated",
            self.lines, self.total_samples, self.simulated_s
        )?;
        let r = &self.resolution_pct_fs;
        writeln!(
            f,
            "resolution ±% FS: p50 {:.3}  p90 {:.3}  p99 {:.3}  worst {:.3}",
            r.p50, r.p90, r.p99, r.max
        )?;
        writeln!(
            f,
            "line-to-line repeatability: ±{:.2} % FS",
            self.repeatability_pct_fs
        )?;
        let h = &self.health;
        writeln!(
            f,
            "health census: healthy {:.4}  degraded {:.4}  faulted {:.4}  recovering {:.4}",
            h.counts[0] as f64 / h.total().max(1) as f64,
            h.counts[1] as f64 / h.total().max(1) as f64,
            h.counts[2] as f64 / h.total().max(1) as f64,
            h.counts[3] as f64 / h.total().max(1) as f64,
        )?;
        if self.fault_incidence.is_empty() {
            writeln!(f, "faults: none scheduled")?;
        } else {
            write!(f, "fault incidence (lines):")?;
            for (kind, count) in &self.fault_incidence {
                write!(f, " {kind}={count}")?;
            }
            writeln!(
                f,
                "  ({} lines saw an active fault, {} faulted samples)",
                self.lines_faulted, self.fault_samples
            )?;
        }
        write!(f, "trace heap: {} bytes", self.trace_heap_bytes)
    }
}

/// The result of a fleet run: population aggregates plus the per-line
/// summaries they were folded from.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The fleet's label.
    pub label: String,
    /// Population aggregates (line-order fold; jobs-invariant).
    pub aggregates: FleetAggregates,
    /// Per-line summaries, in line order.
    pub lines: Vec<LineSummary>,
}

impl FleetOutcome {
    /// Summed trace sample storage across the fleet, bytes — must be 0
    /// under the forced `MetricsOnly` policy.
    pub fn trace_heap_bytes(&self) -> usize {
        self.aggregates.trace_heap_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    fn small_fleet() -> FleetSpec {
        FleetSpec::new(
            "test-fleet",
            FlowMeterConfig::test_profile(),
            Scenario::steady(100.0, 1.5),
            0xF1EE7,
        )
        .with_lines(12)
        .with_sample_period(0.05)
        .with_windows(Windows::settled(0.5, 1.0).with_err(0.5, f64::INFINITY))
    }

    #[test]
    fn line_specs_are_pure_and_distinct() {
        let fleet = small_fleet().with_variation(LineVariation::new().with_flow_jitter(0.05));
        let a = fleet.line_spec(3);
        let b = fleet.line_spec(3);
        assert_eq!(a, b, "line_spec must be a pure function of the index");
        let c = fleet.line_spec(4);
        assert_ne!(a.meter_seed, c.meter_seed);
        assert_ne!(a.line_seed, c.line_seed);
        assert_ne!(
            a.scenario, c.scenario,
            "flow jitter must differentiate line scenarios"
        );
        assert_eq!(a.record, RecordPolicy::MetricsOnly);
        assert!(!a.obs.enabled);
    }

    #[test]
    fn jitter_factor_stays_in_band() {
        let fleet = small_fleet().with_variation(LineVariation::new().with_flow_jitter(0.1));
        for line in 0..200 {
            let f = fleet.jitter_factor(line);
            assert!((0.9..=1.1).contains(&f), "line {line}: factor {f}");
        }
        // And it actually spreads: not all lines identical.
        let f0 = fleet.jitter_factor(0);
        assert!((1..200).any(|i| fleet.jitter_factor(i) != f0));
    }

    #[test]
    fn fault_template_strides() {
        let schedule =
            FaultSchedule::new(1).with_event(0.5, 0.3, FaultKind::AdcStuck { code: 1000 });
        let fleet =
            small_fleet().with_variation(LineVariation::new().with_faults_every(3, 1, schedule));
        for line in 0..12 {
            let spec = fleet.line_spec(line);
            assert_eq!(spec.faults.is_some(), line % 3 == 1, "line {line}");
        }
        // Afflicted lines share the timeline but not the seed.
        let a = fleet.line_spec(1).faults.unwrap();
        let b = fleet.line_spec(4).faults.unwrap();
        assert_eq!(a.events, b.events);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn aggregates_are_batch_size_invariant() {
        let outcome_small = small_fleet().with_batch_size(5).run_jobs(2).unwrap();
        let outcome_big = small_fleet().with_batch_size(64).run_jobs(2).unwrap();
        assert_eq!(outcome_small, outcome_big);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let p = Percentiles::of(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.p50, 3.0);
        assert_eq!(p.p90, 5.0);
        assert_eq!(p.max, 5.0);
        assert!(Percentiles::of(&[]).p50.is_nan());
    }

    #[test]
    fn fleet_memory_is_metrics_only() {
        let outcome = small_fleet().run_jobs(2).unwrap();
        assert_eq!(outcome.trace_heap_bytes(), 0);
        assert_eq!(outcome.lines.len(), 12);
        assert!(outcome.aggregates.total_samples > 0);
        // Healthy fleet: the census saw every sample, all healthy.
        assert_eq!(
            outcome.aggregates.health.total(),
            outcome.aggregates.total_samples
        );
    }
}
