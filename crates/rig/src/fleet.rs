//! The fleet engine: thousands to millions of concurrent simulated lines
//! behind one declarative spec.
//!
//! The paper's end game is not one water station but a *network* of them —
//! "a smart water grid scenario" where every line carries the same MEMS
//! probe and the operator asks population questions: what resolution does
//! the 99th-percentile meter deliver, how much of the fleet's simulated
//! time was spent degraded, which fault classes actually bite in the
//! field? A [`Campaign`](crate::Campaign) answers per-run questions;
//! [`FleetSpec`] scales the same machinery to populations.
//!
//! # Shape
//!
//! A [`FleetSpec`] is a *template*: one meter configuration, one scenario,
//! one [`Windows`] plan — plus a line count and a [`LineVariation`]
//! describing how individual lines differ (independent component
//! tolerances and turbulence via derived seeds, optional flow-demand
//! jitter, optional fault schedules on a strided subset). Calling
//! [`FleetSpec::run`] stamps out one [`RunSpec`] per line, executes them
//! in fixed-size batches over the deterministic scoped-thread pool
//! ([`exec::parallel_map_indexed`]), and folds each finished line into a
//! compact [`LineSummary`] **inside the worker** — the trace, meter and
//! event log die with the run.
//!
//! Every line is forced to [`RecordPolicy::MetricsOnly`]: the streaming
//! reductions (`rig::record`) carry everything the aggregates need, and
//! the per-line trace heap is **zero bytes** by construction —
//! [`FleetOutcome::trace_heap_bytes`] reports the measured total so tests
//! can pin it.
//!
//! # Bounded memory: sketches and shards
//!
//! Population percentiles fold through a fixed-size
//! [`QuantileSketch`] accumulated in a
//! [`ShardAggregates`], so the running state of a fleet is **O(shard)**,
//! independent of the line count. Small fleets (up to
//! [`FleetSpec::exact_threshold`] lines) additionally retain every
//! [`LineSummary`] and report *exact* nearest-rank percentiles; above the
//! threshold only the sketch survives (α ≈ 1 % relative error, pinned by
//! proptest) and [`FleetOutcome::lines`] comes back empty.
//!
//! Disjoint line ranges run as independent [`FleetShard`]s whose
//! [`ShardAggregates`] merge associatively ([`ShardAggregates::merge`])
//! into the same bits the monolithic run produces — the building block
//! for multi-process fan-out. [`FleetSpec::run_sharded`] demonstrates the
//! split-run-merge cycle in process.
//!
//! # Checkpoint/resume
//!
//! [`FleetSpec::run_checkpointed`] persists the accumulated
//! [`ShardAggregates`] (and retained summaries) every few batches via
//! [`FleetCheckpoint`]; a killed run
//! re-invoked with the same spec and path resumes from the last
//! checkpoint and finishes with **bit-identical** aggregates. This works
//! because line `i`'s spec — including its RNG lanes — is a pure function
//! of the fleet spec and `i`: nothing mid-line ever needs serializing,
//! only the index of the next line to run and the merged prefix.
//!
//! # Determinism
//!
//! Line `i`'s spec is a pure function of the fleet spec and `i` (seeds via
//! [`derive_seed`], jitter from the same stream), each line runs
//! single-threaded, batches merge in line order, and the aggregation fold
//! visits summaries in line order; sketch merges are integer bucket
//! additions, associative under any grouping. The whole [`FleetOutcome`]
//! is therefore bit-for-bit identical at any `--jobs` count, batch size
//! or shard split — the same guarantee the campaign layer makes, lifted
//! to populations.
//!
//! ```no_run
//! use hotwire_core::FlowMeterConfig;
//! use hotwire_rig::fleet::{FleetSpec, LineVariation};
//! use hotwire_rig::{Scenario, Windows};
//!
//! let fleet = FleetSpec::new(
//!     "district-7",
//!     FlowMeterConfig::test_profile(),
//!     Scenario::steady(100.0, 4.0),
//!     0xF1EE7,
//! )
//! .with_lines(1000)
//! .with_windows(Windows::settled(2.0, 2.0).with_err(2.0, f64::INFINITY))
//! .with_variation(LineVariation::new().with_flow_jitter(0.05));
//! let outcome = fleet.run()?;
//! println!("{}", outcome.aggregates);
//! assert_eq!(outcome.trace_heap_bytes(), 0);
//! # Ok::<(), hotwire_rig::fleet::FleetError>(())
//! ```

use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::path::Path;

use crate::campaign::{derive_seed, Calibration, LineConfig, RunOutcome, RunSpec, Windows};
use crate::checkpoint::{CheckpointError, FleetCheckpoint};
use crate::exec;
use crate::fault::FaultSchedule;
use crate::maintain::{Maintenance, MaintenanceCounters};
use crate::metrics;
use crate::modality::{Modality, ReferenceKind};
use crate::record::{HealthCensus, RecordPolicy};
use crate::scenario::Scenario;
use crate::sketch::QuantileSketch;
use hotwire_core::config::{fnv1a64, AfeTier};
use hotwire_core::{CoreError, FlowMeterConfig, Meter};
use hotwire_physics::MafParams;

/// Fault schedules applied to a strided subset of a fleet's lines.
///
/// Every `stride`-th line (phase `offset`) receives a copy of `schedule`
/// with a line-derived seed, so the *timing and kinds* repeat across the
/// afflicted subset while the stochastic fault content (corrupted bytes,
/// flipped bits) stays independent per line.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTemplate {
    /// Apply the schedule to lines where `i % stride == offset`.
    /// [`FleetSpec::validate`] rejects `stride == 0`.
    pub stride: usize,
    /// Phase of the afflicted subset (`offset < stride`).
    pub offset: usize,
    /// The event timeline to copy onto each afflicted line (its `seed` is
    /// replaced by a per-line derived seed).
    pub schedule: FaultSchedule,
}

impl FaultTemplate {
    /// Whether line `i` is in the afflicted subset.
    pub fn applies_to(&self, line: usize) -> bool {
        let stride = self.stride.max(1);
        line % stride == self.offset % stride
    }
}

/// Reference instruments interleaved into a fleet on a strided subset of
/// lines.
///
/// Every `stride`-th line (phase `offset`) runs a
/// [`ReferenceMeter`](crate::ReferenceMeter) instead of the fleet's DUT
/// modality, giving the population a ground-truth comparator channel: the
/// reference lines see the same scenario template (with their own line-seed
/// turbulence and jitter draws) and fold into the same aggregates, so a
/// census can compare DUT statistics against co-deployed reference
/// statistics with no extra plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReferenceTemplate {
    /// Replace lines where `i % stride == offset`.
    /// [`FleetSpec::validate`] rejects `stride == 0`.
    pub stride: usize,
    /// Phase of the replaced subset (`offset < stride`).
    pub offset: usize,
    /// Which reference instrument the subset runs.
    pub kind: ReferenceKind,
}

impl ReferenceTemplate {
    /// Whether line `i` runs the reference instrument.
    pub fn applies_to(&self, line: usize) -> bool {
        let stride = self.stride.max(1);
        line % stride == self.offset % stride
    }

    /// The modality the replaced lines run.
    pub fn modality(&self) -> Modality {
        match self.kind {
            ReferenceKind::Promag => Modality::PromagRef,
            ReferenceKind::Turbine => Modality::TurbineRef,
        }
    }
}

/// How individual lines of a fleet differ from the template.
///
/// Component-tolerance and turbulence diversity is automatic — every line
/// gets independent meter and line seeds derived from the fleet seed — so
/// the default variation already models a population of distinct physical
/// meters on distinct physical lines. The knobs here add *environmental*
/// diversity on top.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LineVariation {
    /// Per-line flow-demand jitter: line `i`'s flow schedule is the
    /// template's scaled by a deterministic uniform factor in
    /// `[1 − j, 1 + j]` ([`Schedule::scaled`](crate::Schedule::scaled)).
    /// `0.0` (default) = every line sees the template demand.
    pub flow_jitter: f64,
    /// Optional fault schedules on a strided subset of lines.
    pub faults: Option<FaultTemplate>,
    /// Optional reference instruments on a strided subset of lines
    /// (overrides the fleet's DUT modality there).
    pub references: Option<ReferenceTemplate>,
}

impl LineVariation {
    /// No variation beyond the automatic per-line seed diversity.
    pub fn new() -> Self {
        LineVariation::default()
    }

    /// Sets the per-line flow-demand jitter fraction (e.g. `0.05` = each
    /// line's demand uniformly within ±5 % of the template).
    #[must_use]
    pub fn with_flow_jitter(mut self, fraction: f64) -> Self {
        self.flow_jitter = fraction;
        self
    }

    /// Applies `schedule` to every `stride`-th line (starting at line
    /// `offset`), each copy reseeded per line.
    #[must_use]
    pub fn with_faults_every(
        mut self,
        stride: usize,
        offset: usize,
        schedule: FaultSchedule,
    ) -> Self {
        self.faults = Some(FaultTemplate {
            stride,
            offset,
            schedule,
        });
        self
    }

    /// Runs a reference instrument of `kind` on every `stride`-th line
    /// (starting at line `offset`) instead of the fleet's DUT modality.
    #[must_use]
    pub fn with_references_every(
        mut self,
        stride: usize,
        offset: usize,
        kind: ReferenceKind,
    ) -> Self {
        self.references = Some(ReferenceTemplate {
            stride,
            offset,
            kind,
        });
        self
    }
}

/// A degenerate [`FleetSpec`] caught by [`FleetSpec::validate`] before
/// any line runs (previously these hung the batch loop or produced
/// nonsense deep in the aggregation fold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetSpecError {
    /// The fleet has no lines.
    NoLines,
    /// `batch_size` is zero — the batch loop would never advance.
    ZeroBatchSize,
    /// The fault template's `stride` is zero.
    ZeroFaultStride,
    /// The fault template's `offset` does not lie below its `stride`.
    FaultOffsetOutOfRange {
        /// The out-of-range phase.
        offset: usize,
        /// The template's stride.
        stride: usize,
    },
    /// `sample_period_s` is not a positive finite number.
    BadSamplePeriod,
    /// `flow_jitter` is not a finite fraction in `[0, 1)`.
    BadFlowJitter,
    /// The reference template's `stride` is zero.
    ZeroReferenceStride,
    /// The reference template's `offset` does not lie below its `stride`.
    ReferenceOffsetOutOfRange {
        /// The out-of-range phase.
        offset: usize,
        /// The template's stride.
        stride: usize,
    },
}

impl core::fmt::Display for FleetSpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetSpecError::NoLines => write!(f, "fleet has zero lines"),
            FleetSpecError::ZeroBatchSize => {
                write!(f, "fleet batch size is zero (batch loop cannot advance)")
            }
            FleetSpecError::ZeroFaultStride => write!(f, "fault template stride is zero"),
            FleetSpecError::FaultOffsetOutOfRange { offset, stride } => write!(
                f,
                "fault template offset {offset} must lie below its stride {stride}"
            ),
            FleetSpecError::BadSamplePeriod => write!(
                f,
                "sample period must be a positive finite number of seconds"
            ),
            FleetSpecError::BadFlowJitter => {
                write!(f, "flow jitter must be a finite fraction in [0, 1)")
            }
            FleetSpecError::ZeroReferenceStride => {
                write!(f, "reference template stride is zero")
            }
            FleetSpecError::ReferenceOffsetOutOfRange { offset, stride } => write!(
                f,
                "reference template offset {offset} must lie below its stride {stride}"
            ),
        }
    }
}

impl std::error::Error for FleetSpecError {}

/// The work a failed or interrupted fleet run had already finished: the
/// merged aggregates of the completed line prefix. Nothing is discarded —
/// a caller can report it, merge it with a retry of the remaining range,
/// or (for checkpointed runs) simply re-invoke and resume.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialFleet {
    /// Lines completed, in line order, before the run stopped.
    pub completed_lines: usize,
    /// The merged aggregates of exactly that prefix.
    pub aggregates: ShardAggregates,
}

/// Why a fleet run did not produce a [`FleetOutcome`].
#[derive(Debug)]
pub enum FleetError {
    /// The spec failed [`FleetSpec::validate`].
    Spec(FleetSpecError),
    /// A line failed. Unlike the old all-or-nothing fold, the completed
    /// prefix's aggregates ride along instead of being dropped.
    Line {
        /// The first failing line, in line order.
        line: usize,
        /// The underlying failure.
        source: CoreError,
        /// Everything the run completed before that line.
        partial: Box<PartialFleet>,
    },
    /// A [`FleetSpec::run_checkpointed_with`] observer requested a stop.
    /// The last written checkpoint (if the interval elapsed) survives on
    /// disk for resumption.
    Interrupted(Box<PartialFleet>),
    /// Two [`ShardAggregates`] were merged out of line order.
    ShardMerge {
        /// End (exclusive) of the left shard.
        left_end: usize,
        /// Start of the right shard — must equal `left_end`.
        right_start: usize,
    },
    /// Reading or writing a [`FleetCheckpoint`] failed, or the checkpoint
    /// on disk belongs to a different spec.
    Checkpoint(CheckpointError),
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::Spec(e) => write!(f, "invalid fleet spec: {e}"),
            FleetError::Line {
                line,
                source,
                partial,
            } => write!(
                f,
                "fleet line {line} failed after {} completed lines: {source}",
                partial.completed_lines
            ),
            FleetError::Interrupted(partial) => write!(
                f,
                "fleet run interrupted after {} completed lines",
                partial.completed_lines
            ),
            FleetError::ShardMerge {
                left_end,
                right_start,
            } => write!(
                f,
                "shard merge out of line order: left shard ends at {left_end}, \
                 right starts at {right_start}"
            ),
            FleetError::Checkpoint(e) => write!(f, "fleet checkpoint: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Spec(e) => Some(e),
            FleetError::Line { source, .. } => Some(source),
            FleetError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FleetSpecError> for FleetError {
    fn from(e: FleetSpecError) -> Self {
        FleetError::Spec(e)
    }
}

impl From<CheckpointError> for FleetError {
    fn from(e: CheckpointError) -> Self {
        FleetError::Checkpoint(e)
    }
}

/// Progress report handed to a [`FleetSpec::run_checkpointed_with`]
/// observer at every batch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetProgress {
    /// Lines completed so far (including any resumed prefix).
    pub completed_lines: usize,
    /// Total lines in the fleet.
    pub total_lines: usize,
}

/// Seed-stream tags keeping the per-line derived seeds statistically
/// independent of each other (same `derive_seed` base, disjoint index
/// lanes).
const LANE_METER: u64 = 0;
const LANE_LINE: u64 = 1;
const LANE_JITTER: u64 = 2;
const LANE_FAULT: u64 = 3;
const LANES: u64 = 4;

/// Lines at or below which a fleet retains per-line summaries and reports
/// exact percentiles (see [`FleetSpec::with_exact_threshold`]).
pub const DEFAULT_EXACT_THRESHOLD: usize = 10_000;

/// A declarative description of a whole fleet of simulated lines.
///
/// See the [module docs](self) for the execution and determinism story.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Fleet label, carried into per-line labels and reports.
    pub label: String,
    /// Sensing modality every DUT line runs ([`Modality::Cta`] by
    /// default). Reference-template lines
    /// ([`LineVariation::with_references_every`]) override it.
    pub modality: Modality,
    /// Meter configuration shared by every line.
    pub config: FlowMeterConfig,
    /// Die parameters shared by every line (tolerances still vary per line
    /// through the derived meter seeds).
    pub params: MafParams,
    /// Scenario template (per-line flow jitter applies on top).
    pub scenario: Scenario,
    /// Calibration applied to every line's meter.
    pub calibration: Calibration,
    /// Reduction windows shared by every line.
    pub windows: Windows,
    /// Trace cadence, seconds per sample.
    pub sample_period_s: f64,
    /// Number of lines in the fleet.
    pub lines: usize,
    /// Lines dispatched to the thread pool per batch (bounds peak
    /// in-flight spec/outcome memory; result-invariant).
    pub batch_size: usize,
    /// Fleet-level seed; every per-line seed derives from it.
    pub seed: u64,
    /// Maintenance policy every DUT line runs (inactive by default).
    /// Reference-template lines carry it too, harmlessly: their inert
    /// calibration surface never triggers.
    pub maintenance: Maintenance,
    /// How lines differ from the template.
    pub variation: LineVariation,
    /// Largest fleet (in lines) that retains per-line [`LineSummary`]s and
    /// exact percentiles; above it, only the O(shard) sketch aggregates
    /// survive. See [`FleetSpec::with_exact_threshold`].
    pub exact_threshold: usize,
}

impl FleetSpec {
    /// A fleet of 100 healthy lines on the template scenario, factory
    /// calibration, 20 ms cadence, batches of 256.
    pub fn new(
        label: impl Into<String>,
        config: FlowMeterConfig,
        scenario: Scenario,
        seed: u64,
    ) -> Self {
        FleetSpec {
            label: label.into(),
            modality: Modality::Cta,
            config,
            params: MafParams::nominal(),
            scenario,
            calibration: Calibration::Factory,
            windows: Windows::default(),
            sample_period_s: 0.02,
            lines: 100,
            batch_size: 256,
            seed,
            maintenance: Maintenance::default(),
            variation: LineVariation::default(),
            exact_threshold: DEFAULT_EXACT_THRESHOLD,
        }
    }

    /// Sets the instrument knobs every line shares — modality, AFE tier,
    /// maintenance policy — from one grouped [`LineConfig`], mirroring
    /// [`RunSpec::with_config`]. The config's `obs` and `faults` knobs do
    /// not apply at fleet granularity and are ignored: fleet lines always
    /// run unobserved at [`RecordPolicy::MetricsOnly`], and per-line
    /// fault templates live in [`LineVariation`].
    #[must_use]
    pub fn with_config(mut self, line: LineConfig) -> Self {
        self.modality = line.modality;
        self.config.afe_tier = line.afe_tier;
        self.maintenance = line.maintenance;
        self
    }

    /// Selects the sensing modality every DUT line runs (default
    /// [`Modality::Cta`]). The rest of the spec is modality-agnostic, so
    /// the same template stamps out head-to-head fleets across modalities.
    #[deprecated(
        since = "0.1.0",
        note = "group the per-line instrument knobs in a `LineConfig` and use `with_config`"
    )]
    #[must_use]
    pub fn with_modality(mut self, modality: Modality) -> Self {
        self.modality = modality;
        self
    }

    /// Sets the number of lines.
    #[must_use]
    pub fn with_lines(mut self, lines: usize) -> Self {
        self.lines = lines;
        self
    }

    /// Sets the dispatch batch size (memory knob only — results are
    /// batch-size-invariant).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Sets the reduction windows shared by every line (tuple shorthand
    /// works exactly as on [`RunSpec::with_windows`]).
    #[must_use]
    pub fn with_windows(mut self, windows: impl Into<Windows>) -> Self {
        self.windows = windows.into();
        self
    }

    /// Sets the per-line calibration step.
    #[must_use]
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// Sets the die parameters shared by every line.
    #[must_use]
    pub fn with_params(mut self, params: MafParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the trace cadence.
    #[must_use]
    pub fn with_sample_period(mut self, seconds: f64) -> Self {
        self.sample_period_s = seconds;
        self
    }

    /// Sets how lines differ from the template.
    #[must_use]
    pub fn with_variation(mut self, variation: LineVariation) -> Self {
        self.variation = variation;
        self
    }

    /// Selects the AFE fidelity tier for every line's meter (default
    /// [`AfeTier::Exact`]). [`AfeTier::Fast`] opts the whole fleet into
    /// the quasi-static once-per-frame front end — orders of magnitude
    /// faster, with the error bound pinned by the core tier tests.
    #[deprecated(
        since = "0.1.0",
        note = "group the per-line instrument knobs in a `LineConfig` and use `with_config`"
    )]
    #[must_use]
    pub fn with_afe_tier(mut self, tier: AfeTier) -> Self {
        self.config.afe_tier = tier;
        self
    }

    /// Sets the exact/sketch crossover: fleets up to `lines` lines retain
    /// every [`LineSummary`] and report exact nearest-rank percentiles;
    /// larger fleets keep only the fixed-size sketch aggregates (α ≈ 1 %
    /// percentile error, exact min/max/counts) and return an empty
    /// [`FleetOutcome::lines`]. `0` forces the sketch path at any scale.
    #[must_use]
    pub fn with_exact_threshold(mut self, lines: usize) -> Self {
        self.exact_threshold = lines;
        self
    }

    /// Whether this fleet retains per-line summaries (exact path).
    pub fn retains_summaries(&self) -> bool {
        self.lines <= self.exact_threshold
    }

    /// Checks the spec for degenerate parameters that would hang or
    /// corrupt a run. Every `run*` entry point calls this first.
    ///
    /// # Errors
    ///
    /// Returns the first [`FleetSpecError`] found.
    pub fn validate(&self) -> Result<(), FleetSpecError> {
        if self.lines == 0 {
            return Err(FleetSpecError::NoLines);
        }
        if self.batch_size == 0 {
            return Err(FleetSpecError::ZeroBatchSize);
        }
        if !(self.sample_period_s.is_finite() && self.sample_period_s > 0.0) {
            return Err(FleetSpecError::BadSamplePeriod);
        }
        let j = self.variation.flow_jitter;
        if !(j.is_finite() && (0.0..1.0).contains(&j)) {
            return Err(FleetSpecError::BadFlowJitter);
        }
        if let Some(t) = &self.variation.faults {
            if t.stride == 0 {
                return Err(FleetSpecError::ZeroFaultStride);
            }
            if t.offset >= t.stride {
                return Err(FleetSpecError::FaultOffsetOutOfRange {
                    offset: t.offset,
                    stride: t.stride,
                });
            }
        }
        if let Some(t) = &self.variation.references {
            if t.stride == 0 {
                return Err(FleetSpecError::ZeroReferenceStride);
            }
            if t.offset >= t.stride {
                return Err(FleetSpecError::ReferenceOffsetOutOfRange {
                    offset: t.offset,
                    stride: t.stride,
                });
            }
        }
        Ok(())
    }

    /// A stable 64-bit fingerprint of the whole spec (FNV-1a over the
    /// canonical `Debug` rendering mixed with the config's own
    /// fingerprint). Checkpoints store it so a resume under a different
    /// spec is refused instead of silently producing a franken-fleet.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(format!("{:?}|config={:016x}", self, self.config.fingerprint()).as_bytes())
    }

    /// Line `i`'s deterministic flow-jitter factor in
    /// `[1 − j, 1 + j]`.
    fn jitter_factor(&self, line: usize) -> f64 {
        let j = self.variation.flow_jitter;
        if j == 0.0 {
            return 1.0;
        }
        // Uniform in [0, 1) from the line's jitter-lane seed; exact for
        // the 53-bit mantissa (top 53 bits of the 64-bit stream).
        let u = (derive_seed(self.seed, LANES * line as u64 + LANE_JITTER) >> 11) as f64
            / (1u64 << 53) as f64;
        1.0 + j * (2.0 * u - 1.0)
    }

    /// The [`RunSpec`] for line `i` — a pure function of the fleet spec
    /// and the index, which is the whole determinism story: any thread may
    /// execute it at any time and produce the same bits. It is also the
    /// whole *checkpoint* story: an interrupted line costs nothing to
    /// re-run from scratch, so checkpoints only record which lines
    /// finished, never mid-line meter state.
    ///
    /// Lines always record at [`RecordPolicy::MetricsOnly`] (fleet memory
    /// stays bounded) and run without the observability hot-loop hooks
    /// (at thousands of lines the event logs would dominate the cost of
    /// the simulation itself).
    pub fn line_spec(&self, line: usize) -> RunSpec {
        let i = line as u64;
        let scenario = if self.variation.flow_jitter == 0.0 {
            self.scenario.clone()
        } else {
            self.scenario.with_flow_scaled(self.jitter_factor(line))
        };
        let modality = match &self.variation.references {
            Some(template) if template.applies_to(line) => template.modality(),
            _ => self.modality,
        };
        let faults = self.variation.faults.as_ref().and_then(|template| {
            template.applies_to(line).then(|| {
                let mut schedule = template.schedule.clone();
                schedule.seed = derive_seed(self.seed, LANES * i + LANE_FAULT);
                schedule
            })
        });
        let mut line_config = LineConfig::new()
            .with_modality(modality)
            .with_maintenance(self.maintenance)
            .without_obs();
        line_config.afe_tier = self.config.afe_tier;
        line_config.faults = faults;
        RunSpec::new(
            format!("{}/line-{line:04}", self.label),
            self.config,
            scenario,
            self.seed,
        )
        .with_config(line_config)
        .with_params(self.params)
        .with_meter_seed(derive_seed(self.seed, LANES * i + LANE_METER))
        .with_line_seed(derive_seed(self.seed, LANES * i + LANE_LINE))
        .with_calibration(self.calibration.clone())
        .with_sample_period(self.sample_period_s)
        .with_windows(self.windows.clone())
        .with_record(RecordPolicy::MetricsOnly)
    }

    /// The shard covering lines `[start, end)`. Panics if the range is
    /// not within the fleet.
    pub fn shard(&self, start: usize, end: usize) -> FleetShard<'_> {
        assert!(
            start <= end && end <= self.lines,
            "shard [{start}, {end}) outside fleet of {} lines",
            self.lines
        );
        FleetShard {
            spec: self,
            start,
            end,
        }
    }

    /// Splits the fleet into `count` contiguous, near-equal shards (the
    /// last shards are one line shorter when the split is uneven; empty
    /// shards are dropped when `count > lines`).
    pub fn shards(&self, count: usize) -> Vec<FleetShard<'_>> {
        let count = count.max(1);
        let base = self.lines / count;
        let rem = self.lines % count;
        let mut shards = Vec::with_capacity(count);
        let mut start = 0usize;
        for i in 0..count {
            let len = base + usize::from(i < rem);
            if len == 0 {
                break;
            }
            shards.push(self.shard(start, start + len));
            start += len;
        }
        shards
    }

    /// Executes the fleet with the process-wide default job count
    /// ([`exec::default_jobs`]).
    ///
    /// # Errors
    ///
    /// See [`FleetSpec::run_jobs`].
    pub fn run(&self) -> Result<FleetOutcome, FleetError> {
        self.run_jobs(exec::default_jobs())
    }

    /// Executes the fleet with an explicit job count. The outcome is
    /// bit-for-bit identical for any `jobs`, including `1`.
    ///
    /// # Errors
    ///
    /// [`FleetError::Spec`] for a degenerate spec; [`FleetError::Line`]
    /// carrying the first failing line (in line order) *and* the
    /// completed prefix's aggregates.
    pub fn run_jobs(&self, jobs: usize) -> Result<FleetOutcome, FleetError> {
        self.validate()?;
        let mut acc = ShardAggregates::empty(0);
        self.run_batches(&mut acc, self.lines, jobs, |_| {
            Ok(ControlFlow::Continue(()))
        })?;
        Ok(self.finalize(acc))
    }

    /// Runs the fleet as `shards` sequential [`FleetShard`]s and merges
    /// their [`ShardAggregates`] in line order — bit-identical to
    /// [`FleetSpec::run_jobs`] by construction (the monolithic run *is*
    /// one shard). In a multi-process deployment each shard would run
    /// elsewhere and ship its serialized aggregates home; this entry
    /// point exercises the same split-run-merge cycle in process.
    ///
    /// # Errors
    ///
    /// See [`FleetSpec::run_jobs`]; shard-local failures carry the
    /// merged prefix of all earlier shards plus the failing shard's own
    /// completed lines.
    pub fn run_sharded(&self, shards: usize, jobs: usize) -> Result<FleetOutcome, FleetError> {
        self.validate()?;
        let mut acc = ShardAggregates::empty(0);
        for shard in self.shards(shards) {
            let part = match shard.run_jobs(jobs) {
                Ok(part) => part,
                Err(FleetError::Line {
                    line,
                    source,
                    partial,
                }) => {
                    acc.merge(&partial.aggregates)?;
                    let completed_lines = acc.lines();
                    return Err(FleetError::Line {
                        line,
                        source,
                        partial: Box::new(PartialFleet {
                            completed_lines,
                            aggregates: acc,
                        }),
                    });
                }
                Err(e) => return Err(e),
            };
            acc.merge(&part)?;
        }
        Ok(self.finalize(acc))
    }

    /// Executes the fleet with a checkpoint file at `path`, written every
    /// `interval_lines` completed lines (rounded up to the next batch
    /// boundary). If `path` already holds a checkpoint of **this** spec,
    /// the run resumes after its completed prefix instead of starting
    /// over; the final outcome is bit-identical to an uninterrupted run.
    /// On success the finished checkpoint is left on disk (a further
    /// resume is a no-op that just finalizes it).
    ///
    /// # Errors
    ///
    /// Everything [`FleetSpec::run_jobs`] returns, plus
    /// [`FleetError::Checkpoint`] for unreadable/unwritable checkpoint
    /// files or a checkpoint written by a different spec
    /// ([`CheckpointError::SpecMismatch`]).
    pub fn run_checkpointed(
        &self,
        path: &Path,
        interval_lines: usize,
        jobs: usize,
    ) -> Result<FleetOutcome, FleetError> {
        self.run_checkpointed_with(path, interval_lines, jobs, |_| ControlFlow::Continue(()))
    }

    /// [`FleetSpec::run_checkpointed`] with a progress observer invoked at
    /// every batch boundary. Returning [`ControlFlow::Break`] stops the
    /// run with [`FleetError::Interrupted`] — the deterministic stand-in
    /// for a kill, used by the resume tests and `fleet_bench
    /// --kill-after-lines`.
    ///
    /// # Errors
    ///
    /// See [`FleetSpec::run_checkpointed`].
    pub fn run_checkpointed_with(
        &self,
        path: &Path,
        interval_lines: usize,
        jobs: usize,
        mut observer: impl FnMut(FleetProgress) -> ControlFlow<()>,
    ) -> Result<FleetOutcome, FleetError> {
        self.validate()?;
        let fingerprint = self.fingerprint();
        let interval = interval_lines.max(1);
        let mut acc = match FleetCheckpoint::load_if_present(path)? {
            Some(ck) => ck.into_verified_shard(fingerprint, self.lines)?,
            None => ShardAggregates::empty(0),
        };
        let mut last_written = acc.lines();
        let total_lines = self.lines;
        self.run_batches(&mut acc, self.lines, jobs, |acc| {
            if acc.lines() - last_written >= interval {
                FleetCheckpoint::new(fingerprint, total_lines, acc.clone()).write(path)?;
                last_written = acc.lines();
            }
            Ok(observer(FleetProgress {
                completed_lines: acc.lines(),
                total_lines,
            }))
        })?;
        if last_written != acc.lines() {
            FleetCheckpoint::new(fingerprint, total_lines, acc.clone()).write(path)?;
        }
        Ok(self.finalize(acc))
    }

    /// The batch loop shared by every entry point: runs lines
    /// `[acc.end, end)` in batches over the thread pool, folding each
    /// completed batch into `acc` in line order. `on_batch` fires at each
    /// batch boundary; `Break` aborts with [`FleetError::Interrupted`].
    fn run_batches(
        &self,
        acc: &mut ShardAggregates,
        end: usize,
        jobs: usize,
        mut on_batch: impl FnMut(&mut ShardAggregates) -> Result<ControlFlow<()>, FleetError>,
    ) -> Result<(), FleetError> {
        let full_scale = self.config.full_scale.to_cm_per_s();
        let retain = self.retains_summaries();
        while acc.end < end {
            let batch_len = self.batch_size.min(end - acc.end);
            let indices: Vec<usize> = (acc.end..acc.end + batch_len).collect();
            // Summarize inside the worker: the outcome (meter, empty
            // trace, reductions) drops before the next line starts, so
            // in-flight memory is O(batch), retained memory O(shard).
            let batch = exec::parallel_map_indexed(&indices, jobs, |_, &line| {
                let spec = self.line_spec(line);
                let fault_kinds: Vec<&'static str> = spec
                    .faults
                    .as_ref()
                    .map(|s| s.events.iter().map(|e| e.kind.name()).collect())
                    .unwrap_or_default();
                spec.execute()
                    .map(|outcome| LineSummary::from_outcome(line, &outcome, fault_kinds))
                    .map_err(|source| (line, source))
            });
            for result in batch {
                match result {
                    Ok(summary) => acc.push(summary, full_scale, retain),
                    Err((line, source)) => {
                        // The completed prefix (earlier batches plus this
                        // batch's lines before the failure) rides along
                        // instead of being dropped on the floor.
                        return Err(FleetError::Line {
                            line,
                            source,
                            partial: Box::new(PartialFleet {
                                completed_lines: acc.lines(),
                                aggregates: acc.clone(),
                            }),
                        });
                    }
                }
            }
            if let ControlFlow::Break(()) = on_batch(acc)? {
                return Err(FleetError::Interrupted(Box::new(PartialFleet {
                    completed_lines: acc.lines(),
                    aggregates: acc.clone(),
                })));
            }
        }
        Ok(())
    }

    /// Folds a completed full-fleet [`ShardAggregates`] into the final
    /// outcome.
    fn finalize(&self, acc: ShardAggregates) -> FleetOutcome {
        let aggregates = acc.finalize(
            self.config.full_scale.to_cm_per_s(),
            self.scenario.duration_s * self.lines as f64,
        );
        FleetOutcome {
            label: self.label.clone(),
            aggregates,
            lines: acc.summaries,
        }
    }
}

/// A contiguous range of a fleet's lines, runnable independently of the
/// other ranges — the unit of multi-process fan-out. Shards of the same
/// spec produce [`ShardAggregates`] that [`merge`](ShardAggregates::merge)
/// in line order into exactly the monolithic run's aggregates.
#[derive(Debug, Clone, Copy)]
pub struct FleetShard<'a> {
    /// The fleet this shard belongs to.
    pub spec: &'a FleetSpec,
    /// First line of the shard.
    pub start: usize,
    /// One past the last line of the shard.
    pub end: usize,
}

impl FleetShard<'_> {
    /// Lines in the shard.
    pub fn lines(&self) -> usize {
        self.end - self.start
    }

    /// Runs the shard's lines with an explicit job count.
    ///
    /// # Errors
    ///
    /// See [`FleetSpec::run_jobs`]; the partial aggregates cover the
    /// shard's completed prefix.
    pub fn run_jobs(&self, jobs: usize) -> Result<ShardAggregates, FleetError> {
        self.spec.validate()?;
        let mut acc = ShardAggregates::empty(self.start);
        self.spec
            .run_batches(&mut acc, self.end, jobs, |_| Ok(ControlFlow::Continue(())))?;
        Ok(acc)
    }
}

/// The compact per-line residue a fleet run keeps: what population
/// statistics need, nothing a trace would hold.
#[derive(Debug, Clone, PartialEq)]
pub struct LineSummary {
    /// Line index in the fleet.
    pub line: usize,
    /// Samples recorded (streamed, not stored).
    pub samples: u64,
    /// Settled-window mean, cm/s.
    pub settled_mean: f64,
    /// Settled-window ±σ (the line's resolution), cm/s.
    pub settled_std: f64,
    /// DUT-vs-truth RMS error over the err window, cm/s (`NaN` when the
    /// fleet declares no err window).
    pub err_rms: f64,
    /// Worst |DUT − truth| over the err window, cm/s.
    pub err_max_abs: f64,
    /// Samples recorded while a fault was active.
    pub fault_samples: u64,
    /// Maintenance-policy actions the line's engine took (all zero when
    /// the fleet carries no active [`Maintenance`] config).
    pub maintenance: MaintenanceCounters,
    /// Health-state census over the line's simulated time.
    pub health: HealthCensus,
    /// Names of the fault kinds scheduled on this line (empty = healthy
    /// template line).
    pub fault_kinds: Vec<&'static str>,
    /// Bytes of trace sample storage the run held — 0 under the forced
    /// [`RecordPolicy::MetricsOnly`]; summed and pinned by tests.
    pub trace_heap_bytes: usize,
    /// [`FlowMeter::state_digest`](hotwire_core::FlowMeter::state_digest)
    /// of the line's meter at the end of the run — a 64-bit witness of
    /// the full simulated end state, which lets the jobs-invariance and
    /// checkpoint round-trip tests cover meter-state equality without
    /// serializing meters.
    pub meter_digest: u64,
}

impl LineSummary {
    /// Folds one finished run into its summary (everything copied out;
    /// the outcome can drop).
    fn from_outcome(line: usize, outcome: &RunOutcome, fault_kinds: Vec<&'static str>) -> Self {
        let red = &outcome.reduced;
        LineSummary {
            line,
            samples: red.samples,
            settled_mean: red.settled.mean(),
            settled_std: red.settled.std_dev(),
            err_rms: red.err_rms(),
            err_max_abs: red.err_max_abs,
            fault_samples: red.fault_samples,
            maintenance: outcome.maintenance,
            health: red.health_census,
            fault_kinds,
            trace_heap_bytes: outcome.trace.samples.heap_bytes(),
            meter_digest: outcome.meter.state_digest(),
        }
    }
}

/// Nearest-rank percentiles of a population statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Smallest value.
    pub min: f64,
    /// 50th percentile (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Largest value.
    pub max: f64,
}

impl Percentiles {
    /// Nearest-rank percentiles of `values`. NaNs are **excluded from the
    /// ranks** (they used to sort last via `total_cmp` and silently
    /// poison `p99`/`max`); the caller learns how many there were from
    /// [`FleetAggregates::nan_lines`]. Returns all-NaN for an empty (or
    /// all-NaN) population.
    pub fn of(values: &[f64]) -> Self {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if sorted.is_empty() {
            return Percentiles {
                min: f64::NAN,
                p50: f64::NAN,
                p90: f64::NAN,
                p99: f64::NAN,
                max: f64::NAN,
            };
        }
        sorted.sort_by(f64::total_cmp);
        let rank = |q: f64| -> f64 {
            let n = sorted.len();
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[idx]
        };
        Percentiles {
            min: sorted[0],
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Per-statistic counts of lines whose value was NaN and therefore
/// excluded from the percentile ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NanLines {
    /// Lines whose settled-window resolution was NaN (e.g. an empty
    /// settled window).
    pub resolution: u64,
    /// Lines whose RMS error was NaN. When the fleet declares no err
    /// window this equals the line count by design (every line reports
    /// `NaN` there).
    pub err_rms: u64,
}

/// The mergeable, serializable accumulator of one contiguous line range —
/// the fleet's unit of aggregation, checkpointing and multi-process
/// fan-out.
///
/// Everything in here merges associatively: integer counts add, the
/// [`QuantileSketch`]es add bucket-wise, the settled-mean extrema combine
/// through exact `f64::min`/`max`. Merging shards in line order therefore
/// reproduces the monolithic run's accumulator bit for bit — the
/// invariance the fleet tests pin.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardAggregates {
    /// First line of the covered range.
    pub start: usize,
    /// One past the last covered line.
    pub end: usize,
    /// Total samples streamed across the range.
    pub total_samples: u64,
    /// Samples recorded under an active fault.
    pub fault_samples: u64,
    /// Lines that recorded at least one faulted sample.
    pub lines_faulted: u64,
    /// Summed per-line trace storage, bytes (0 under `MetricsOnly`).
    pub trace_heap_bytes: usize,
    /// Maintenance-policy actions summed over the range — the
    /// recalibration-cost axis of the f4 frontier.
    pub maintenance: MaintenanceCounters,
    /// Health-state census summed over the range's simulated time.
    pub health: HealthCensus,
    /// Lines per scheduled fault kind, keyed by
    /// [`FaultKind::name`](crate::FaultKind::name) (owned strings so the
    /// accumulator serializes).
    pub fault_incidence: BTreeMap<String, u64>,
    /// Sketch of per-line resolution (settled ±σ), % of full scale.
    pub resolution_pct_fs: QuantileSketch,
    /// Sketch of per-line RMS error, cm/s.
    pub err_rms_cm_s: QuantileSketch,
    /// Smallest per-line settled mean, cm/s (`+∞` until a line lands;
    /// NaN means never enter — mirrors [`metrics::repeatability`]).
    pub settled_mean_min: f64,
    /// Largest per-line settled mean, cm/s (`−∞` until a line lands).
    pub settled_mean_max: f64,
    /// Retained per-line summaries, in line order — populated only when
    /// the owning spec [`retains_summaries`](FleetSpec::retains_summaries)
    /// (small fleets); empty above the exact threshold, keeping the
    /// accumulator O(shard).
    pub summaries: Vec<LineSummary>,
}

impl ShardAggregates {
    /// An empty accumulator whose range starts (and ends) at `start`.
    pub fn empty(start: usize) -> Self {
        ShardAggregates {
            start,
            end: start,
            total_samples: 0,
            fault_samples: 0,
            lines_faulted: 0,
            trace_heap_bytes: 0,
            maintenance: MaintenanceCounters::default(),
            health: HealthCensus::default(),
            fault_incidence: BTreeMap::new(),
            resolution_pct_fs: QuantileSketch::new(),
            err_rms_cm_s: QuantileSketch::new(),
            settled_mean_min: f64::INFINITY,
            settled_mean_max: f64::NEG_INFINITY,
            summaries: Vec::new(),
        }
    }

    /// Lines covered.
    pub fn lines(&self) -> usize {
        self.end - self.start
    }

    /// Folds one finished line (the next in line order) into the
    /// accumulator. `retain` keeps the summary for the exact path.
    pub fn push(&mut self, summary: LineSummary, full_scale_cm_s: f64, retain: bool) {
        debug_assert_eq!(
            summary.line, self.end,
            "summaries must arrive in line order"
        );
        self.end = summary.line + 1;
        self.total_samples += summary.samples;
        self.fault_samples += summary.fault_samples;
        self.trace_heap_bytes += summary.trace_heap_bytes;
        if summary.fault_samples > 0 {
            self.lines_faulted += 1;
        }
        self.maintenance.merge(&summary.maintenance);
        self.health.merge(&summary.health);
        let mut seen: Vec<&'static str> = Vec::new();
        for &kind in &summary.fault_kinds {
            if !seen.contains(&kind) {
                seen.push(kind);
                *self.fault_incidence.entry(kind.to_string()).or_insert(0) += 1;
            }
        }
        self.resolution_pct_fs
            .push(summary.settled_std / full_scale_cm_s * 100.0);
        self.err_rms_cm_s.push(summary.err_rms);
        // min/max ignore a NaN operand, exactly like the folds inside
        // `metrics::repeatability` — so the merged extrema match the
        // exact fold's bit for bit.
        self.settled_mean_min = self.settled_mean_min.min(summary.settled_mean);
        self.settled_mean_max = self.settled_mean_max.max(summary.settled_mean);
        if retain {
            self.summaries.push(summary);
        }
    }

    /// Merges the adjacent shard `other` (covering the range starting
    /// exactly where `self` ends) into `self`. Associative: any grouping
    /// of in-order merges produces identical bits.
    ///
    /// # Errors
    ///
    /// [`FleetError::ShardMerge`] when the ranges are not contiguous in
    /// line order.
    pub fn merge(&mut self, other: &ShardAggregates) -> Result<(), FleetError> {
        if self.end != other.start {
            return Err(FleetError::ShardMerge {
                left_end: self.end,
                right_start: other.start,
            });
        }
        self.end = other.end;
        self.total_samples += other.total_samples;
        self.fault_samples += other.fault_samples;
        self.lines_faulted += other.lines_faulted;
        self.trace_heap_bytes += other.trace_heap_bytes;
        self.maintenance.merge(&other.maintenance);
        self.health.merge(&other.health);
        for (kind, count) in &other.fault_incidence {
            *self.fault_incidence.entry(kind.clone()).or_insert(0) += count;
        }
        self.resolution_pct_fs.merge(&other.resolution_pct_fs);
        self.err_rms_cm_s.merge(&other.err_rms_cm_s);
        self.settled_mean_min = self.settled_mean_min.min(other.settled_mean_min);
        self.settled_mean_max = self.settled_mean_max.max(other.settled_mean_max);
        self.summaries.extend(other.summaries.iter().cloned());
        Ok(())
    }

    /// Approximate retained heap of the accumulator, bytes — what
    /// `fleet_bench` reports to demonstrate O(shard) memory. Sketch
    /// buckets plus incidence keys plus any retained summaries.
    pub fn heap_bytes(&self) -> usize {
        let incidence: usize = self
            .fault_incidence
            .keys()
            .map(|k| k.capacity() + std::mem::size_of::<(String, u64)>())
            .sum();
        let summaries: usize = self.summaries.capacity() * std::mem::size_of::<LineSummary>()
            + self
                .summaries
                .iter()
                .map(|s| s.fault_kinds.capacity() * std::mem::size_of::<&'static str>())
                .sum::<usize>();
        self.resolution_pct_fs.heap_bytes() + self.err_rms_cm_s.heap_bytes() + incidence + summaries
    }

    /// Line-to-line repeatability over the covered range, % of full scale
    /// — `(max − min) / 2 / full_scale`, NaN below two lines, matching
    /// [`metrics::repeatability`] bit for bit.
    fn repeatability_pct_fs(&self, full_scale_cm_s: f64) -> f64 {
        if self.lines() < 2 || full_scale_cm_s <= 0.0 {
            return f64::NAN;
        }
        (self.settled_mean_max - self.settled_mean_min) / 2.0 / full_scale_cm_s * 100.0
    }

    /// Folds the accumulator into the population-level
    /// [`FleetAggregates`]. With every summary retained (small fleets)
    /// the percentiles are the exact nearest-rank fold; otherwise they
    /// come from the sketches (α-bounded mid-ranks, exact min/max).
    pub fn finalize(&self, full_scale_cm_s: f64, simulated_s: f64) -> FleetAggregates {
        let exact = !self.summaries.is_empty() && self.summaries.len() == self.lines();
        let (resolution_pct_fs, err_rms_cm_s, repeatability) = if exact {
            let resolutions: Vec<f64> = self
                .summaries
                .iter()
                .map(|s| s.settled_std / full_scale_cm_s * 100.0)
                .collect();
            let err_rms: Vec<f64> = self.summaries.iter().map(|s| s.err_rms).collect();
            let means: Vec<f64> = self.summaries.iter().map(|s| s.settled_mean).collect();
            (
                Percentiles::of(&resolutions),
                Percentiles::of(&err_rms),
                metrics::repeatability(&means, full_scale_cm_s) * 100.0,
            )
        } else {
            (
                self.resolution_pct_fs.percentiles(),
                self.err_rms_cm_s.percentiles(),
                self.repeatability_pct_fs(full_scale_cm_s),
            )
        };
        FleetAggregates {
            lines: self.lines(),
            total_samples: self.total_samples,
            simulated_s,
            resolution_pct_fs,
            err_rms_cm_s,
            repeatability_pct_fs: repeatability,
            nan_lines: NanLines {
                resolution: self.resolution_pct_fs.nan_count(),
                err_rms: self.err_rms_cm_s.nan_count(),
            },
            health: self.health,
            fault_incidence: self.fault_incidence.clone(),
            lines_faulted: self.lines_faulted,
            fault_samples: self.fault_samples,
            trace_heap_bytes: self.trace_heap_bytes,
            maintenance: self.maintenance,
        }
    }
}

/// Population-level aggregates of a fleet run, folded in line order
/// (jobs-, batch-size- and shard-invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAggregates {
    /// Lines aggregated.
    pub lines: usize,
    /// Total samples streamed across the fleet.
    pub total_samples: u64,
    /// Fleet simulated time, line-seconds.
    pub simulated_s: f64,
    /// Population percentiles of per-line resolution (settled ±σ), % of
    /// full scale. Exact below the spec's
    /// [`exact_threshold`](FleetSpec::exact_threshold), sketch-derived
    /// (α ≈ 1 %) above it.
    pub resolution_pct_fs: Percentiles,
    /// Population percentiles of per-line RMS error, cm/s (all-NaN when
    /// no err window was declared).
    pub err_rms_cm_s: Percentiles,
    /// Line-to-line repeatability: half-spread of the per-line settled
    /// means, % of full scale ([`metrics::repeatability`]).
    pub repeatability_pct_fs: f64,
    /// Lines whose per-line statistics were NaN and therefore excluded
    /// from the percentile ranks (instead of silently poisoning
    /// `p99`/`max` as they used to).
    pub nan_lines: NanLines,
    /// Health-state census summed over every line's simulated time.
    pub health: HealthCensus,
    /// Lines per scheduled fault kind (a line with two kinds counts once
    /// under each), keyed by [`FaultKind::name`](crate::FaultKind::name).
    pub fault_incidence: BTreeMap<String, u64>,
    /// Lines that recorded at least one faulted sample.
    pub lines_faulted: u64,
    /// Total samples recorded under an active fault.
    pub fault_samples: u64,
    /// Summed per-line trace sample storage, bytes — 0 by construction
    /// under the forced `MetricsOnly` policy.
    pub trace_heap_bytes: usize,
    /// Maintenance-policy actions summed across the fleet (all zero
    /// when the spec carries no active [`Maintenance`] config).
    pub maintenance: MaintenanceCounters,
}

impl FleetAggregates {
    /// Folds per-line summaries (visited in slice order — callers pass
    /// line order) into population aggregates through the exact
    /// percentile path.
    pub fn from_summaries(
        summaries: &[LineSummary],
        full_scale_cm_s: f64,
        simulated_s: f64,
    ) -> Self {
        let start = summaries.first().map_or(0, |s| s.line);
        let mut acc = ShardAggregates::empty(start);
        for s in summaries {
            acc.end = s.line;
            acc.push(s.clone(), full_scale_cm_s, true);
        }
        acc.finalize(full_scale_cm_s, simulated_s)
    }
}

impl core::fmt::Display for FleetAggregates {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "{} lines, {} samples, {:.0} line-s simulated",
            self.lines, self.total_samples, self.simulated_s
        )?;
        let r = &self.resolution_pct_fs;
        writeln!(
            f,
            "resolution ±% FS: p50 {:.3}  p90 {:.3}  p99 {:.3}  worst {:.3}",
            r.p50, r.p90, r.p99, r.max
        )?;
        writeln!(
            f,
            "line-to-line repeatability: ±{:.2} % FS",
            self.repeatability_pct_fs
        )?;
        if self.nan_lines.resolution > 0 {
            writeln!(
                f,
                "({} lines reported NaN resolution — excluded from ranks)",
                self.nan_lines.resolution
            )?;
        }
        let h = &self.health;
        writeln!(
            f,
            "health census: healthy {:.4}  degraded {:.4}  faulted {:.4}  recovering {:.4}",
            h.counts[0] as f64 / h.total().max(1) as f64,
            h.counts[1] as f64 / h.total().max(1) as f64,
            h.counts[2] as f64 / h.total().max(1) as f64,
            h.counts[3] as f64 / h.total().max(1) as f64,
        )?;
        if self.fault_incidence.is_empty() {
            writeln!(f, "faults: none scheduled")?;
        } else {
            write!(f, "fault incidence (lines):")?;
            for (kind, count) in &self.fault_incidence {
                write!(f, " {kind}={count}")?;
            }
            writeln!(
                f,
                "  ({} lines saw an active fault, {} faulted samples)",
                self.lines_faulted, self.fault_samples
            )?;
        }
        let m = &self.maintenance;
        if m.actions() > 0 || m.persists_skipped > 0 {
            writeln!(
                f,
                "maintenance: {} re-zeros, {} refits, {} persists ({} skipped)",
                m.re_zeros, m.refits, m.persists, m.persists_skipped
            )?;
        }
        write!(f, "trace heap: {} bytes", self.trace_heap_bytes)
    }
}

/// The result of a fleet run: population aggregates plus the per-line
/// summaries they were folded from (empty above the spec's
/// [`exact_threshold`](FleetSpec::exact_threshold) — large fleets keep
/// only the O(shard) aggregates).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The fleet's label.
    pub label: String,
    /// Population aggregates (line-order fold; jobs-invariant).
    pub aggregates: FleetAggregates,
    /// Per-line summaries, in line order; empty above the exact
    /// threshold.
    pub lines: Vec<LineSummary>,
}

impl FleetOutcome {
    /// Summed trace sample storage across the fleet, bytes — must be 0
    /// under the forced `MetricsOnly` policy.
    pub fn trace_heap_bytes(&self) -> usize {
        self.aggregates.trace_heap_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    fn small_fleet() -> FleetSpec {
        FleetSpec::new(
            "test-fleet",
            FlowMeterConfig::test_profile(),
            Scenario::steady(100.0, 1.5),
            0xF1EE7,
        )
        .with_lines(12)
        .with_sample_period(0.05)
        .with_windows(Windows::settled(0.5, 1.0).with_err(0.5, f64::INFINITY))
    }

    #[test]
    fn line_specs_are_pure_and_distinct() {
        let fleet = small_fleet().with_variation(LineVariation::new().with_flow_jitter(0.05));
        let a = fleet.line_spec(3);
        let b = fleet.line_spec(3);
        assert_eq!(a, b, "line_spec must be a pure function of the index");
        let c = fleet.line_spec(4);
        assert_ne!(a.meter_seed, c.meter_seed);
        assert_ne!(a.line_seed, c.line_seed);
        assert_ne!(
            a.scenario, c.scenario,
            "flow jitter must differentiate line scenarios"
        );
        assert_eq!(a.record, RecordPolicy::MetricsOnly);
        assert!(!a.obs.enabled);
    }

    #[test]
    fn fleet_with_config_matches_the_deprecated_builders() {
        // The grouped entry point pins the deprecated per-knob builders:
        // identical FleetSpec (PartialEq over every field), identical
        // line specs, therefore identical runs.
        #[allow(deprecated)]
        let sprawl = small_fleet()
            .with_modality(Modality::HeatPulse)
            .with_afe_tier(AfeTier::Fast);
        let grouped = small_fleet().with_config(
            LineConfig::new()
                .with_modality(Modality::HeatPulse)
                .with_afe_tier(AfeTier::Fast),
        );
        assert_eq!(sprawl, grouped);
        assert_eq!(sprawl.line_spec(5), grouped.line_spec(5));
    }

    #[test]
    fn maintenance_config_reaches_every_line_spec() {
        let maintenance = Maintenance::new(crate::maintain::Policy::Hybrid {
            period_s: 40.0,
            on_degraded: true,
            drift_threshold: 0.05,
            temp_delta_c: 2.0,
        });
        let fleet = small_fleet().with_config(LineConfig::new().with_maintenance(maintenance));
        for line in 0..12 {
            assert_eq!(fleet.line_spec(line).maintenance, maintenance);
        }
    }

    #[test]
    fn jitter_factor_stays_in_band() {
        let fleet = small_fleet().with_variation(LineVariation::new().with_flow_jitter(0.1));
        for line in 0..200 {
            let f = fleet.jitter_factor(line);
            assert!((0.9..=1.1).contains(&f), "line {line}: factor {f}");
        }
        // And it actually spreads: not all lines identical.
        let f0 = fleet.jitter_factor(0);
        assert!((1..200).any(|i| fleet.jitter_factor(i) != f0));
    }

    #[test]
    fn fault_template_strides() {
        let schedule =
            FaultSchedule::new(1).with_event(0.5, 0.3, FaultKind::AdcStuck { code: 1000 });
        let fleet =
            small_fleet().with_variation(LineVariation::new().with_faults_every(3, 1, schedule));
        for line in 0..12 {
            let spec = fleet.line_spec(line);
            assert_eq!(spec.faults.is_some(), line % 3 == 1, "line {line}");
        }
        // Afflicted lines share the timeline but not the seed.
        let a = fleet.line_spec(1).faults.unwrap();
        let b = fleet.line_spec(4).faults.unwrap();
        assert_eq!(a.events, b.events);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        assert_eq!(
            small_fleet().with_lines(0).validate(),
            Err(FleetSpecError::NoLines)
        );
        // `with_batch_size` clamps, but the field is public — a zero set
        // directly used to hang the batch loop forever.
        let mut zero_batch = small_fleet();
        zero_batch.batch_size = 0;
        assert_eq!(zero_batch.validate(), Err(FleetSpecError::ZeroBatchSize));
        assert!(matches!(
            zero_batch.run_jobs(1),
            Err(FleetError::Spec(FleetSpecError::ZeroBatchSize))
        ));
        let mut zero_stride = small_fleet().with_variation(LineVariation::new().with_faults_every(
            3,
            1,
            FaultSchedule::new(0),
        ));
        zero_stride.variation.faults.as_mut().unwrap().stride = 0;
        assert_eq!(zero_stride.validate(), Err(FleetSpecError::ZeroFaultStride));
        let bad_offset = small_fleet().with_variation(LineVariation::new().with_faults_every(
            3,
            7,
            FaultSchedule::new(0),
        ));
        assert_eq!(
            bad_offset.validate(),
            Err(FleetSpecError::FaultOffsetOutOfRange {
                offset: 7,
                stride: 3
            })
        );
        assert_eq!(
            small_fleet().with_sample_period(0.0).validate(),
            Err(FleetSpecError::BadSamplePeriod)
        );
        assert_eq!(
            small_fleet().with_sample_period(f64::NAN).validate(),
            Err(FleetSpecError::BadSamplePeriod)
        );
        assert_eq!(
            small_fleet()
                .with_variation(LineVariation::new().with_flow_jitter(1.5))
                .validate(),
            Err(FleetSpecError::BadFlowJitter)
        );
        assert!(small_fleet().validate().is_ok());
    }

    #[test]
    fn line_failure_returns_partial_not_nothing() {
        // An invalid die parameter set fails every line at build time;
        // the typed error must carry the failing index and the (empty)
        // completed prefix instead of a bare CoreError.
        let mut params = MafParams::nominal();
        params.heater_a_tolerance = f64::NAN;
        let fleet = small_fleet().with_params(params);
        match fleet.run_jobs(2) {
            Err(FleetError::Line { line, partial, .. }) => {
                assert_eq!(line, 0, "first failing line in line order");
                assert_eq!(partial.completed_lines, 0);
                assert_eq!(partial.aggregates.lines(), 0);
            }
            other => panic!("expected FleetError::Line, got {other:?}"),
        }
    }

    #[test]
    fn aggregates_are_batch_size_invariant() {
        let outcome_small = small_fleet().with_batch_size(5).run_jobs(2).unwrap();
        let outcome_big = small_fleet().with_batch_size(64).run_jobs(2).unwrap();
        assert_eq!(outcome_small, outcome_big);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let p = Percentiles::of(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.p50, 3.0);
        assert_eq!(p.p90, 5.0);
        assert_eq!(p.max, 5.0);
        assert!(Percentiles::of(&[]).p50.is_nan());
    }

    #[test]
    fn percentiles_exclude_nan_from_ranks() {
        // Regression: NaNs used to sort last and report as p99/max.
        let p = Percentiles::of(&[4.0, f64::NAN, 1.0, 3.0, f64::NAN, 2.0, 5.0]);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.p50, 3.0);
        assert_eq!(p.p99, 5.0, "NaN must not be the p99");
        assert_eq!(p.max, 5.0, "NaN must not be the max");
        assert!(Percentiles::of(&[f64::NAN, f64::NAN]).max.is_nan());
    }

    #[test]
    fn nan_lines_are_counted_not_poisoning() {
        // A settled window past the end of the scenario leaves every
        // line's resolution NaN — the aggregates must say so explicitly
        // and keep the percentiles NaN-clean (all-NaN here).
        let fleet = small_fleet().with_windows(Windows::settled(9.0, 5.0));
        let outcome = fleet.run_jobs(2).unwrap();
        let a = &outcome.aggregates;
        assert_eq!(a.nan_lines.resolution, 12);
        assert!(a.resolution_pct_fs.max.is_nan());
        // No err window declared → every line's err_rms is NaN by design.
        assert_eq!(a.nan_lines.err_rms, 12);
    }

    #[test]
    fn sharded_merge_matches_monolithic() {
        let spec = small_fleet().with_batch_size(5);
        let mono = spec.run_jobs(2).unwrap();
        for shards in [1, 2, 3, 5, 12] {
            let sharded = spec.run_sharded(shards, 2).unwrap();
            assert_eq!(mono, sharded, "{shards} shards");
        }
        // Out-of-order merges are refused, not silently wrong.
        let parts = spec.shards(3);
        let first = parts[0].run_jobs(1).unwrap();
        let third = parts[2].run_jobs(1).unwrap();
        let mut acc = first;
        assert!(matches!(
            acc.merge(&third),
            Err(FleetError::ShardMerge { .. })
        ));
    }

    #[test]
    fn sketch_path_tracks_exact_path() {
        let spec = small_fleet();
        let exact = spec.run_jobs(2).unwrap();
        let sketched = spec.clone().with_exact_threshold(0).run_jobs(2).unwrap();
        // Sketch path drops the per-line summaries...
        assert!(sketched.lines.is_empty());
        assert_eq!(exact.lines.len(), 12);
        // ...keeps the integer aggregates identical...
        assert_eq!(
            exact.aggregates.total_samples,
            sketched.aggregates.total_samples
        );
        assert_eq!(exact.aggregates.health, sketched.aggregates.health);
        // ...the extrema exact...
        assert_eq!(
            exact.aggregates.resolution_pct_fs.min.to_bits(),
            sketched.aggregates.resolution_pct_fs.min.to_bits()
        );
        assert_eq!(
            exact.aggregates.resolution_pct_fs.max.to_bits(),
            sketched.aggregates.resolution_pct_fs.max.to_bits()
        );
        assert_eq!(
            exact.aggregates.repeatability_pct_fs.to_bits(),
            sketched.aggregates.repeatability_pct_fs.to_bits()
        );
        // ...and the mid-ranks within the sketch's α bound.
        for (e, s) in [
            (
                exact.aggregates.resolution_pct_fs.p50,
                sketched.aggregates.resolution_pct_fs.p50,
            ),
            (
                exact.aggregates.resolution_pct_fs.p99,
                sketched.aggregates.resolution_pct_fs.p99,
            ),
        ] {
            assert!(
                (e - s).abs() <= QuantileSketch::RELATIVE_ERROR * e.abs() + 1e-12,
                "exact {e} vs sketch {s}"
            );
        }
    }

    #[test]
    fn fleet_memory_is_metrics_only() {
        let outcome = small_fleet().run_jobs(2).unwrap();
        assert_eq!(outcome.trace_heap_bytes(), 0);
        assert_eq!(outcome.lines.len(), 12);
        assert!(outcome.aggregates.total_samples > 0);
        // Healthy fleet: the census saw every sample, all healthy.
        assert_eq!(
            outcome.aggregates.health.total(),
            outcome.aggregates.total_samples
        );
        // No NaN lines in a healthy settled fleet.
        assert_eq!(outcome.aggregates.nan_lines.resolution, 0);
    }
}
