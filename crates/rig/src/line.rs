//! The measurement line: schedules → the instantaneous probe environment.
//!
//! Translates a [`Scenario`]'s bulk-flow schedule into the *local* velocity
//! the insertion probe actually sees (profile factor + turbulence), and
//! packages pressure and temperature into a [`SensorEnvironment`].

use crate::scenario::Scenario;
use hotwire_physics::fluid::Water;
use hotwire_physics::pipe::{Pipe, ProbeFlow};
use hotwire_physics::SensorEnvironment;
use hotwire_units::{Celsius, MetersPerSecond, Pascals, Seconds};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The simulated measurement line.
#[derive(Debug)]
pub struct WaterLine {
    scenario: Scenario,
    probe: ProbeFlow,
    water: Water,
    rng: StdRng,
    time: f64,
    /// Most recent bulk velocity (signed, m/s).
    bulk: MetersPerSecond,
    /// Most recent local probe velocity (signed, m/s).
    local: MetersPerSecond,
}

impl WaterLine {
    /// Builds a line running `scenario` through a DN50 pipe of potable
    /// water, deterministic under `seed`.
    pub fn new(scenario: Scenario, seed: u64) -> Self {
        WaterLine {
            scenario,
            probe: ProbeFlow::new(Pipe::dn50()),
            water: Water::potable(),
            rng: StdRng::seed_from_u64(seed),
            time: 0.0,
            bulk: MetersPerSecond::ZERO,
            local: MetersPerSecond::ZERO,
        }
    }

    /// Elapsed scenario time in seconds.
    #[inline]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// `true` once the scenario has run its full duration.
    pub fn finished(&self) -> bool {
        self.time >= self.scenario.duration_s
    }

    /// The scenario being run.
    #[inline]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The true bulk velocity at the current time (the references' ground
    /// truth).
    #[inline]
    pub fn bulk_velocity(&self) -> MetersPerSecond {
        self.bulk
    }

    /// The local (probe) velocity at the current time.
    #[inline]
    pub fn local_velocity(&self) -> MetersPerSecond {
        self.local
    }

    /// Advances the line by `dt` and returns the probe environment for the
    /// new instant.
    pub fn step(&mut self, dt: Seconds) -> SensorEnvironment {
        self.time += dt.get();
        let t = self.time;
        self.bulk = MetersPerSecond::from_cm_per_s(self.scenario.flow_cm_s.value_at(t));
        let temperature = Celsius::new(self.scenario.temperature_c.value_at(t));
        let pressure = Pascals::from_bar(self.scenario.pressure_bar.value_at(t));
        self.local = self
            .probe
            .step(dt, &self.water, temperature, self.bulk, &mut self.rng);
        SensorEnvironment {
            fluid_temperature: temperature,
            velocity: self.local,
            pressure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Schedule;

    #[test]
    fn steady_line_produces_steady_env() {
        let mut line = WaterLine::new(Scenario::steady(100.0, 10.0), 1);
        let dt = Seconds::from_millis(1.0);
        let mut sum = 0.0;
        let n = 5000;
        for _ in 0..n {
            let env = line.step(dt);
            sum += env.velocity.get();
            assert_eq!(env.fluid_temperature.get(), 15.0);
            assert!((env.pressure.get() - 1.0e5).abs() < 1.0);
        }
        let mean = sum / n as f64;
        // Local mean = bulk × profile factor (turbulent ≈ 1.22).
        assert!(
            (mean - 1.0 * 1.224).abs() < 0.05,
            "local mean {mean} m/s for 1 m/s bulk"
        );
    }

    #[test]
    fn local_velocity_fluctuates_in_turbulent_flow() {
        let mut line = WaterLine::new(Scenario::steady(100.0, 10.0), 2);
        let dt = Seconds::from_millis(1.0);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..5000 {
            let v = line.step(dt).velocity.get();
            min = min.min(v);
            max = max.max(v);
        }
        assert!(max - min > 0.02, "no turbulence visible: [{min}, {max}]");
    }

    #[test]
    fn schedule_is_followed() {
        let scenario = Scenario {
            flow_cm_s: Schedule::staircase(&[50.0, 150.0], 1.0),
            ..Scenario::steady(0.0, 2.0)
        };
        let mut line = WaterLine::new(scenario, 3);
        let dt = Seconds::from_millis(10.0);
        let mut first_phase = 0.0;
        let mut second_phase = 0.0;
        for i in 0..200 {
            line.step(dt);
            if i == 50 {
                first_phase = line.bulk_velocity().to_cm_per_s();
            }
            if i == 150 {
                second_phase = line.bulk_velocity().to_cm_per_s();
            }
        }
        assert_eq!(first_phase, 50.0);
        assert_eq!(second_phase, 150.0);
        assert!(line.finished());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = WaterLine::new(Scenario::steady(120.0, 5.0), 7);
        let mut b = WaterLine::new(Scenario::steady(120.0, 5.0), 7);
        let dt = Seconds::from_millis(1.0);
        for _ in 0..100 {
            assert_eq!(a.step(dt).velocity, b.step(dt).velocity);
        }
    }
}
