//! Behavioural model of a turbine-wheel flow meter.
//!
//! The mechanical baseline of the paper's comparison: "The proposed system
//! achieves the same accuracy of the turbine wheel devices with cost
//! reduction and improved reliability since no mechanical moving parts are
//! exposed in water."
//!
//! Model: the rotor tracks the flow with a first-order mechanical lag;
//! bearing friction imposes a starting velocity below which the wheel
//! stalls; pulses are counted over a gate time, quantizing the reading; the
//! wheel does not resolve direction; bearings wear with accumulated
//! revolutions, slowly increasing friction.

use hotwire_units::{MetersPerSecond, Seconds};

/// The turbine-wheel meter model.
#[derive(Debug, Clone)]
pub struct TurbineMeter {
    /// Pulses per metre of flow passage (K-factor re-expressed in velocity).
    pulses_per_meter: f64,
    /// Starting/stall velocity from bearing friction.
    starting_velocity: MetersPerSecond,
    /// Rotor mechanical time constant.
    rotor_tau: Seconds,
    /// Pulse-count gate time.
    gate: Seconds,
    /// Current rotor-equivalent velocity (always ≥ 0: no direction).
    rotor_velocity: f64,
    /// Pulse phase accumulator within the gate.
    pulse_accumulator: f64,
    pulses_in_gate: u64,
    since_gate: f64,
    reading: MetersPerSecond,
    /// Accumulated rotor travel in metres (bearing wear).
    travel_m: f64,
    /// Internal LCG state for gate-to-gate bearing jitter.
    jitter_state: u64,
}

impl TurbineMeter {
    /// A DN50-class turbine: 400 pulses/m, 5 cm/s starting velocity, 300 ms
    /// rotor lag, 1 s gate.
    pub fn dn50() -> Self {
        TurbineMeter {
            pulses_per_meter: 400.0,
            starting_velocity: MetersPerSecond::from_cm_per_s(5.0),
            rotor_tau: Seconds::from_millis(300.0),
            gate: Seconds::new(1.0),
            rotor_velocity: 0.0,
            pulse_accumulator: 0.0,
            pulses_in_gate: 0,
            since_gate: 0.0,
            reading: MetersPerSecond::ZERO,
            travel_m: 0.0,
            jitter_state: 0x5DEECE66D,
        }
    }

    /// The effective starting velocity, growing with bearing wear
    /// (+1 cm/s per 100 km of rotor travel).
    pub fn effective_starting_velocity(&self) -> MetersPerSecond {
        self.starting_velocity + MetersPerSecond::from_cm_per_s(self.travel_m / 100_000.0)
    }

    /// Velocity quantum of one pulse per gate.
    pub fn resolution(&self) -> MetersPerSecond {
        MetersPerSecond::new(1.0 / (self.pulses_per_meter * self.gate.get()))
    }

    /// Advances the meter by `dt` at true bulk velocity `bulk`; returns the
    /// held gate reading (unsigned — turbines do not resolve direction).
    pub fn step(&mut self, dt: Seconds, bulk: MetersPerSecond) -> MetersPerSecond {
        let demand = bulk.get().abs();
        let target = if demand < self.effective_starting_velocity().get() {
            0.0
        } else {
            // Bearing drag subtracts a fraction of the starting velocity.
            demand - 0.5 * self.effective_starting_velocity().get()
        };
        let alpha = 1.0 - (-dt.get() / self.rotor_tau.get()).exp();
        self.rotor_velocity += alpha * (target - self.rotor_velocity);
        self.travel_m += self.rotor_velocity * dt.get();

        // Pulse generation.
        self.pulse_accumulator += self.rotor_velocity * self.pulses_per_meter * dt.get();
        while self.pulse_accumulator >= 1.0 {
            self.pulse_accumulator -= 1.0;
            self.pulses_in_gate += 1;
        }
        self.since_gate += dt.get();
        if self.since_gate >= self.gate.get() {
            let v = self.pulses_in_gate as f64 / (self.pulses_per_meter * self.since_gate);
            // Report the rotor velocity plus the drag compensation the
            // manufacturer's K-factor table bakes in.
            let compensated = if v > 0.0 {
                // Bearing friction fluctuates gate to gate: ±0.2 % rms
                // multiplicative jitter (deterministic LCG so the model
                // stays seed-free and reproducible).
                self.jitter_state = self
                    .jitter_state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((self.jitter_state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                (v + 0.5 * self.starting_velocity.get()) * (1.0 + 0.003 * u)
            } else {
                0.0
            };
            self.reading = MetersPerSecond::new(compensated);
            self.pulses_in_gate = 0;
            self.since_gate = 0.0;
        }
        self.reading
    }

    /// The latest held reading.
    #[inline]
    pub fn reading(&self) -> MetersPerSecond {
        self.reading
    }

    /// Accumulated rotor travel (wear proxy), metres.
    #[inline]
    pub fn travel_m(&self) -> f64 {
        self.travel_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(m: &mut TurbineMeter, v_cm_s: f64, seconds: f64) -> MetersPerSecond {
        let dt = Seconds::from_millis(1.0);
        let steps = (seconds / dt.get()) as usize;
        let v = MetersPerSecond::from_cm_per_s(v_cm_s);
        let mut last = MetersPerSecond::ZERO;
        for _ in 0..steps {
            last = m.step(dt, v);
        }
        last
    }

    #[test]
    fn tracks_mid_range_flow() {
        let mut m = TurbineMeter::dn50();
        let reading = run(&mut m, 100.0, 10.0);
        assert!(
            (reading.to_cm_per_s() - 100.0).abs() < 3.0,
            "reading {} cm/s at 100 cm/s",
            reading.to_cm_per_s()
        );
    }

    #[test]
    fn stalls_below_starting_velocity() {
        let mut m = TurbineMeter::dn50();
        let reading = run(&mut m, 3.0, 10.0);
        assert_eq!(reading.get(), 0.0, "wheel must stall at 3 cm/s");
    }

    #[test]
    fn no_direction_sensitivity() {
        let mut fwd = TurbineMeter::dn50();
        let mut rev = TurbineMeter::dn50();
        let f = run(&mut fwd, 100.0, 5.0);
        let r = run(&mut rev, -100.0, 5.0);
        assert!(f.get() > 0.0 && r.get() > 0.0);
        assert!((f.get() - r.get()).abs() < 0.02);
    }

    #[test]
    fn quantized_resolution() {
        let m = TurbineMeter::dn50();
        // 400 pulses/m over a 1 s gate → 2.5 mm/s quantum = 0.1 % of 250 cm/s FS.
        assert!((m.resolution().get() - 0.0025).abs() < 1e-12);
    }

    #[test]
    fn rotor_lags_steps() {
        let mut m = TurbineMeter::dn50();
        run(&mut m, 100.0, 5.0);
        // Immediately after a step down, the gate still holds the old value.
        let dt = Seconds::from_millis(1.0);
        let reading = m.step(dt, MetersPerSecond::from_cm_per_s(20.0));
        assert!(reading.to_cm_per_s() > 50.0, "gate held {reading}");
        // After a few gates it settles near the new flow.
        let settled = run(&mut m, 20.0, 5.0);
        assert!(
            (settled.to_cm_per_s() - 20.0).abs() < 3.0,
            "settled {settled}"
        );
    }

    #[test]
    fn wear_accumulates_with_travel() {
        let mut m = TurbineMeter::dn50();
        let v0 = m.effective_starting_velocity();
        run(&mut m, 250.0, 60.0);
        assert!(m.travel_m() > 100.0);
        assert!(m.effective_starting_velocity() >= v0);
    }
}
