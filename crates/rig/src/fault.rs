//! Deterministic fault injection for campaign runs.
//!
//! §6 of the paper motivates diffuse deployment with self-diagnosis —
//! "allowing also any malfunction behavior … to be immediately localized
//! and isolated". This module supplies the *malfunctions*: a declarative
//! [`FaultSchedule`] of seeded, time-triggered faults that a [`RunSpec`]
//! carries alongside its scenario, so the same campaign executor that runs
//! healthy evaluations also runs fault campaigns — bit-identically at any
//! job count.
//!
//! Two fault families are covered:
//!
//! * **Platform faults** — a stuck or offset ADC code, supply-DAC element
//!   failure, supply brownout, EEPROM bit flips, UART byte corruption and
//!   drops. These attack the ISIF electronics of paper Fig. 4.
//! * **Physics events** — an abrupt bubble burst or a step of fouling on
//!   the heater surfaces. These attack the §4 liquid-specific failure
//!   modes directly, bypassing the slow natural growth models.
//!
//! Windowed faults (ADC, DAC, brownout, UART) are active over
//! `[at_s, at_s + duration_s)` and reverted afterwards; impulse faults
//! (EEPROM flip, bubble burst, fouling step) fire once at `at_s` and leave
//! the firmware's graceful-degradation machinery
//! ([`HealthMonitor`](hotwire_core::HealthMonitor)) to clean up.
//!
//! [`RunSpec`]: crate::campaign::RunSpec

use hotwire_afe::ThermometerDac;
use hotwire_core::faults::AdcFault;
use hotwire_core::obs::EventKind;
use hotwire_core::{Measurement, Meter, TelemetryRecord};
use hotwire_isif::uart::{FrameDecoder, PushOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injectable fault class.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub enum FaultKind {
    /// The control ADC freezes at a fixed code (dead modulator). Starves
    /// the firmware's frozen-code watchdog discriminator.
    AdcStuck {
        /// The frozen converter output.
        code: i32,
    },
    /// A constant offset corrupts every control code (reference drift).
    AdcOffset {
        /// Offset added to each code.
        codes: i32,
    },
    /// The bridge supply rail sags: the supply DAC's full scale drops to
    /// `fraction` of nominal for the event window.
    SupplyBrownout {
        /// Remaining full-scale fraction, clamped to `[0.05, 1.0]`.
        fraction: f64,
    },
    /// Thermometer-DAC unit elements fail open, shaving `span_loss` off the
    /// actuator's output span until redundancy is switched in at the end of
    /// the window.
    DacElementFail {
        /// Fraction of output span lost, clamped to `[0.0, 0.95]`.
        span_loss: f64,
    },
    /// A bit flip lands in a calibration EEPROM slot; the firmware is then
    /// forced to reload calibration, exercising the CRC check and the
    /// redundant-slot fallback.
    EepromBitFlip {
        /// EEPROM slot to corrupt.
        slot: usize,
        /// Byte offset within the stored record.
        byte: usize,
    },
    /// The telemetry UART link degrades: bytes flip and drop with the given
    /// per-byte probabilities while the window is active.
    UartCorruption {
        /// Per-byte probability of a single-bit flip.
        flip_per_byte: f64,
        /// Per-byte probability of the byte vanishing entirely.
        drop_per_byte: f64,
    },
    /// An abrupt vapor/air burst blankets both heaters with extra bubble
    /// coverage (impulse; the bubbles then detach naturally).
    BubbleBurst {
        /// Coverage fraction added to each heater, clamped to `[0, 1]`.
        coverage: f64,
    },
    /// A step of CaCO₃ scale lands on both heaters at once (impulse; scale
    /// does not clear on its own — recovery is the firmware's re-zero).
    SteppedFouling {
        /// Scale thickness added, µm.
        microns: f64,
    },
}

impl FaultKind {
    /// Stable snake_case name of the fault class — the label carried by
    /// `FaultActivated`/`FaultCleared` observability events.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::AdcStuck { .. } => "adc_stuck",
            FaultKind::AdcOffset { .. } => "adc_offset",
            FaultKind::SupplyBrownout { .. } => "supply_brownout",
            FaultKind::DacElementFail { .. } => "dac_element_fail",
            FaultKind::EepromBitFlip { .. } => "eeprom_bit_flip",
            FaultKind::UartCorruption { .. } => "uart_corruption",
            FaultKind::BubbleBurst { .. } => "bubble_burst",
            FaultKind::SteppedFouling { .. } => "stepped_fouling",
        }
    }

    /// Interns a [`FaultKind::name`] string back to its `&'static str`,
    /// or `None` for an unknown label. The fleet checkpoint codec uses
    /// this to rebuild `LineSummary::fault_kinds` (which hold static
    /// names, not owned strings) from serialized text.
    pub fn intern_name(name: &str) -> Option<&'static str> {
        const NAMES: [&str; 8] = [
            "adc_stuck",
            "adc_offset",
            "supply_brownout",
            "dac_element_fail",
            "eeprom_bit_flip",
            "uart_corruption",
            "bubble_burst",
            "stepped_fouling",
        ];
        NAMES.iter().find(|&&n| n == name).copied()
    }
}

/// One scheduled fault occurrence.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct FaultEvent {
    /// Scenario time at which the fault engages, seconds.
    pub at_s: f64,
    /// Active window length, seconds (ignored by impulse faults).
    pub duration_s: f64,
    /// What breaks.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A fault of `kind` active over `[at_s, at_s + duration_s)`.
    pub fn new(at_s: f64, duration_s: f64, kind: FaultKind) -> Self {
        FaultEvent {
            at_s,
            duration_s: duration_s.max(0.0),
            kind,
        }
    }

    /// End of the active window, seconds.
    pub fn end_s(&self) -> f64 {
        self.at_s + self.duration_s
    }

    /// Whether scenario time `t` falls inside the active window.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.at_s && t < self.end_s()
    }
}

/// A declarative, seeded schedule of faults for one run.
///
/// The schedule travels inside a [`RunSpec`](crate::campaign::RunSpec)
/// (see [`RunSpec::with_faults`](crate::campaign::RunSpec::with_faults)),
/// so a fault campaign is exactly as deterministic as a healthy one: the
/// injected byte noise is driven by `seed`, never by wall-clock or thread
/// scheduling.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct FaultSchedule {
    /// Seed for the injection noise (UART byte corruption draws).
    pub seed: u64,
    /// The scheduled faults, in any order.
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule with the given injection seed.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds a fault of `kind` active over `[at_s, at_s + duration_s)`.
    pub fn with_event(mut self, at_s: f64, duration_s: f64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent::new(at_s, duration_s, kind));
        self
    }

    /// Whether any event attacks the UART link (enables the telemetry
    /// wire simulation in the runner).
    pub fn has_uart_fault(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::UartCorruption { .. }))
    }
}

/// Telemetry-link bookkeeping collected by the UART fault simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct UartStats {
    /// Telemetry frames encoded onto the simulated wire.
    pub frames_sent: u64,
    /// Frames that survived framing + CRC and decoded to valid records.
    pub frames_received: u64,
    /// Bytes dropped by the fault window.
    pub bytes_dropped: u64,
    /// Bytes corrupted (single-bit flips) by the fault window.
    pub bytes_corrupted: u64,
    /// CRC failures counted by the receiving decoder.
    pub crc_errors: u64,
}

/// Lifecycle of one scheduled event inside the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pending,
    Active,
    Done,
}

/// Executes a [`FaultSchedule`] against a live meter, one control tick at a
/// time.
///
/// The runner calls [`apply`](Self::apply) with the current scenario time
/// before each control tick (engaging and reverting windowed faults), and
/// [`observe`](Self::observe) for each recorded measurement (driving the
/// telemetry wire simulation when the schedule has a UART fault).
#[derive(Debug)]
pub struct FaultInjector {
    schedule: FaultSchedule,
    phases: Vec<Phase>,
    saved_dac: Vec<Option<ThermometerDac>>,
    rng: StdRng,
    decoder: FrameDecoder,
    stats: UartStats,
    uart_enabled: bool,
    wire: Option<Vec<u8>>,
}

impl FaultInjector {
    /// Builds an injector for `schedule`.
    pub fn new(schedule: FaultSchedule) -> Self {
        let n = schedule.events.len();
        let uart_enabled = schedule.has_uart_fault();
        FaultInjector {
            rng: StdRng::seed_from_u64(schedule.seed ^ 0xFA_01_7E_57),
            phases: vec![Phase::Pending; n],
            saved_dac: vec![None; n],
            decoder: FrameDecoder::new(),
            stats: UartStats::default(),
            uart_enabled,
            wire: None,
            schedule,
        }
    }

    /// The schedule this injector executes.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Enables wire capture: every post-corruption byte that reaches the
    /// simulated receiver is also appended to an internal tap, retrievable
    /// with [`take_wire`](Self::take_wire). Forces the wire simulation on
    /// even when the schedule has no UART fault (a clean line still frames
    /// its telemetry), without perturbing the noise RNG — with no active
    /// corruption window no random draws are made, so captured clean runs
    /// stay bit-identical to uncaptured ones.
    pub fn capture_wire(&mut self) {
        self.uart_enabled = true;
        self.wire = Some(Vec::new());
    }

    /// Takes the captured wire bytes accumulated since
    /// [`capture_wire`](Self::capture_wire); empty if capture was never
    /// enabled.
    pub fn take_wire(&mut self) -> Vec<u8> {
        self.wire.take().unwrap_or_default()
    }

    /// Engages and reverts scheduled faults for scenario time `t`. Works
    /// against any [`Meter`]: each modality maps the attack onto its own
    /// hardware through the trait's fault hooks (a CTA brownout swaps the
    /// supply DAC; a heat-pulse brownout derates the heater drive).
    pub fn apply<M: Meter>(&mut self, t: f64, meter: &mut M) {
        for i in 0..self.schedule.events.len() {
            let event = self.schedule.events[i];
            match self.phases[i] {
                Phase::Pending if t >= event.at_s => {
                    // Activation is reported *before* the engage, so any
                    // consequence event (e.g. the calibration reload an
                    // EEPROM flip forces) appears after its cause in the
                    // run's event log.
                    meter.observe(EventKind::FaultActivated {
                        fault: event.kind.name(),
                    });
                    self.saved_dac[i] = engage(event.kind, meter);
                    // A zero-length window reverts on the next call.
                    self.phases[i] = Phase::Active;
                }
                Phase::Active if t >= event.end_s() => {
                    revert(event.kind, self.saved_dac[i].take(), meter);
                    meter.observe(EventKind::FaultCleared {
                        fault: event.kind.name(),
                    });
                    self.phases[i] = Phase::Done;
                }
                _ => {}
            }
        }
    }

    /// Whether a scheduled window would both engage *and* expire at
    /// scenario time `t` — a window shorter than one control tick. The
    /// per-tick step path gives such a window exactly one modulator tick
    /// of engagement (engaged by the `apply` before the first tick at
    /// `t`, reverted by the `apply` before the second); a whole-frame
    /// block step cannot reproduce that single faulted tick, so the
    /// runner drops to per-tick stepping while one is pending. Must be
    /// consulted *before* the frame's `apply` call — afterwards the
    /// window is already `Active` and no longer visible here.
    pub fn has_subtick_window(&self, t: f64) -> bool {
        self.schedule
            .events
            .iter()
            .zip(&self.phases)
            .any(|(e, p)| *p == Phase::Pending && t >= e.at_s && t >= e.end_s())
    }

    /// Runs one recorded measurement through the telemetry wire simulation
    /// (no-op unless the schedule has a UART fault). `meter` is only used
    /// to report frame-error events into the run's observability log — the
    /// wire simulation itself never touches the instrument.
    pub fn observe<M: Meter>(&mut self, t: f64, m: &Measurement, meter: &mut M) {
        if !self.uart_enabled {
            return;
        }
        // The worst active UART window governs this frame's byte noise.
        let (mut flip_p, mut drop_p) = (0.0_f64, 0.0_f64);
        for e in &self.schedule.events {
            if let FaultKind::UartCorruption {
                flip_per_byte,
                drop_per_byte,
            } = e.kind
            {
                if e.contains(t) {
                    flip_p = flip_p.max(flip_per_byte.clamp(0.0, 1.0));
                    drop_p = drop_p.max(drop_per_byte.clamp(0.0, 1.0));
                }
            }
        }
        let record = TelemetryRecord::from_measurement(m);
        let Ok(frame) = record.to_frame() else { return };
        self.stats.frames_sent += 1;
        for byte in frame {
            let mut b = byte;
            if drop_p > 0.0 && self.rng.gen_bool(drop_p) {
                self.stats.bytes_dropped += 1;
                continue;
            }
            if flip_p > 0.0 && self.rng.gen_bool(flip_p) {
                b ^= 1u8 << self.rng.gen_range(0u32..8);
                self.stats.bytes_corrupted += 1;
            }
            if let Some(wire) = &mut self.wire {
                wire.push(b);
            }
            match self.decoder.push_described(b) {
                PushOutcome::Frame(payload) => {
                    if TelemetryRecord::from_bytes(&payload).is_ok() {
                        self.stats.frames_received += 1;
                    }
                }
                PushOutcome::CrcError { recovered } => {
                    meter.observe(EventKind::UartFrameError);
                    // Frames the decoder re-hunted out of the discarded span
                    // still arrived intact — count them as received.
                    for payload in recovered {
                        if TelemetryRecord::from_bytes(&payload).is_ok() {
                            self.stats.frames_received += 1;
                        }
                    }
                }
                PushOutcome::Pending => {}
            }
        }
    }

    /// The telemetry-link statistics accumulated so far.
    pub fn stats(&self) -> UartStats {
        UartStats {
            crc_errors: self.decoder.crc_errors(),
            ..self.stats
        }
    }
}

/// Engages one fault through the [`Meter`] fault hooks; returns whatever
/// the meter saved for restoration on revert (the CTA meter returns its
/// original supply DAC, other modalities return `None`).
fn engage<M: Meter>(kind: FaultKind, meter: &mut M) -> Option<ThermometerDac> {
    match kind {
        FaultKind::AdcStuck { code } => {
            meter.inject_adc_fault(Some(AdcFault::Stuck(code)));
            None
        }
        FaultKind::AdcOffset { codes } => {
            meter.inject_adc_fault(Some(AdcFault::Offset(codes)));
            None
        }
        FaultKind::SupplyBrownout { fraction } => meter.degrade_supply(fraction.clamp(0.05, 1.0)),
        FaultKind::DacElementFail { span_loss } => {
            meter.degrade_supply(1.0 - span_loss.clamp(0.0, 0.95))
        }
        FaultKind::EepromBitFlip { slot, byte } => {
            meter.corrupt_calibration(slot, byte);
            // Force the firmware to re-read: on a corrupt primary it falls
            // back to the redundant slot and repairs; with both slots gone
            // it latches Faulted. Either way the health machine reports it.
            let _ = meter.reload_calibration();
            None
        }
        FaultKind::UartCorruption { .. } => None,
        FaultKind::BubbleBurst { coverage } => {
            meter.inject_bubble_burst(coverage);
            None
        }
        FaultKind::SteppedFouling { microns } => {
            meter.deposit_fouling(microns);
            None
        }
    }
}

/// Reverts one windowed fault (impulse faults have nothing to undo).
fn revert<M: Meter>(kind: FaultKind, saved_dac: Option<ThermometerDac>, meter: &mut M) {
    match kind {
        FaultKind::AdcStuck { .. } | FaultKind::AdcOffset { .. } => {
            meter.inject_adc_fault(None);
        }
        FaultKind::SupplyBrownout { .. } | FaultKind::DacElementFail { .. } => {
            meter.restore_supply(saved_dac);
        }
        FaultKind::EepromBitFlip { .. }
        | FaultKind::UartCorruption { .. }
        | FaultKind::BubbleBurst { .. }
        | FaultKind::SteppedFouling { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::LineRunner;
    use crate::scenario::Scenario;
    use hotwire_core::{FlowMeter, FlowMeterConfig, HealthState};
    use hotwire_physics::MafParams;

    fn test_meter(seed: u64) -> FlowMeter {
        FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), seed).unwrap()
    }

    #[test]
    fn event_window_semantics() {
        let e = FaultEvent::new(1.0, 0.5, FaultKind::AdcStuck { code: 0 });
        assert!(!e.contains(0.99));
        assert!(e.contains(1.0));
        assert!(e.contains(1.49));
        assert!(!e.contains(1.5));
        assert_eq!(e.end_s(), 1.5);
    }

    #[test]
    fn brownout_degrades_and_restores_the_supply_dac() {
        let mut meter = test_meter(31);
        let nominal_vref = meter.platform_mut().supply_dac().vref().get();
        let schedule = FaultSchedule::new(31).with_event(
            1.0,
            0.5,
            FaultKind::SupplyBrownout { fraction: 0.6 },
        );
        let mut inj = FaultInjector::new(schedule);
        inj.apply(0.5, &mut meter);
        assert_eq!(meter.platform_mut().supply_dac().vref().get(), nominal_vref);
        inj.apply(1.0, &mut meter);
        let sagged = meter.platform_mut().supply_dac().vref().get();
        assert!((sagged - 0.6 * nominal_vref).abs() < 1e-12, "vref {sagged}");
        inj.apply(1.6, &mut meter);
        assert_eq!(meter.platform_mut().supply_dac().vref().get(), nominal_vref);
    }

    #[test]
    fn adc_events_install_and_clear_the_fault() {
        let mut meter = test_meter(32);
        let schedule =
            FaultSchedule::new(32).with_event(0.0, 1.0, FaultKind::AdcOffset { codes: 123 });
        let mut inj = FaultInjector::new(schedule);
        inj.apply(0.0, &mut meter);
        assert_eq!(meter.adc_fault(), Some(AdcFault::Offset(123)));
        inj.apply(1.0, &mut meter);
        assert_eq!(meter.adc_fault(), None);
    }

    #[test]
    fn bubble_burst_shows_up_in_the_trace() {
        let meter = test_meter(33);
        let schedule =
            FaultSchedule::new(33).with_event(0.5, 0.0, FaultKind::BubbleBurst { coverage: 0.4 });
        let mut runner = LineRunner::new(Scenario::steady(100.0, 1.2), meter, 33);
        runner.install_faults(schedule);
        let trace = runner.run(0.01);
        let peak = trace
            .samples
            .iter()
            .map(|s| s.bubble_coverage)
            .fold(0.0, f64::max);
        assert!(peak > 0.2, "peak coverage {peak} after a 0.4 burst");
    }

    #[test]
    fn uart_corruption_loses_frames_deterministically() {
        let schedule = FaultSchedule::new(77).with_event(
            0.0,
            10.0,
            FaultKind::UartCorruption {
                flip_per_byte: 0.05,
                drop_per_byte: 0.05,
            },
        );
        let run = |schedule: FaultSchedule| {
            let meter = test_meter(34);
            let mut runner = LineRunner::new(Scenario::steady(80.0, 2.0), meter, 34);
            runner.install_faults(schedule);
            let trace = runner.run(0.01);
            trace.uart
        };
        let stats = run(schedule.clone());
        assert!(stats.frames_sent > 50, "sent {}", stats.frames_sent);
        assert!(
            stats.frames_received < stats.frames_sent,
            "a 5 %/byte noisy link must lose frames ({} of {} survived)",
            stats.frames_received,
            stats.frames_sent
        );
        assert!(stats.bytes_dropped > 0 && stats.bytes_corrupted > 0);
        // Same schedule, same seed → bit-identical wire outcome.
        assert_eq!(run(schedule.clone()), stats);
    }

    #[test]
    fn clean_link_passes_every_frame() {
        let schedule = FaultSchedule::new(78).with_event(
            5.0,
            1.0,
            FaultKind::UartCorruption {
                flip_per_byte: 1.0,
                drop_per_byte: 1.0,
            },
        );
        // The event never triggers inside a 2 s scenario, but its presence
        // enables the wire simulation — which must then be lossless.
        let meter = test_meter(35);
        let mut runner = LineRunner::new(Scenario::steady(80.0, 2.0), meter, 35);
        runner.install_faults(schedule);
        let trace = runner.run(0.02);
        assert!(trace.uart.frames_sent > 0);
        assert_eq!(trace.uart.frames_sent, trace.uart.frames_received);
        assert_eq!(trace.uart.crc_errors, 0);
    }

    #[test]
    fn eeprom_flip_triggers_redundant_slot_fallback() {
        use crate::campaign::FieldCalibration;
        use hotwire_core::KingCalibration;

        let mut meter = test_meter(36);
        FieldCalibration {
            setpoints_cm_s: vec![15.0, 50.0, 100.0, 160.0, 220.0],
            settle_s: 0.6,
            average_s: 0.4,
            seed: 36,
        }
        .apply(&mut meter, 1)
        .unwrap();
        let schedule = FaultSchedule::new(36).with_event(
            0.2,
            0.0,
            FaultKind::EepromBitFlip {
                slot: KingCalibration::EEPROM_SLOT,
                byte: 3,
            },
        );
        let mut runner = LineRunner::new(Scenario::steady(100.0, 1.0), meter, 36);
        runner.install_faults(schedule);
        let trace = runner.run(0.01);
        assert!(
            trace
                .samples
                .iter()
                .any(|s| s.health == HealthState::Recovering),
            "mirror fallback must surface as Recovering in the trace"
        );
        let meter = runner.into_meter();
        assert!(meter.calibration().is_some(), "calibration must survive");
    }
}
