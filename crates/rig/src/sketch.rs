//! Fixed-size mergeable quantile sketches for fleet-scale population
//! statistics.
//!
//! [`Percentiles::of`](crate::fleet::Percentiles::of) is exact but holds
//! one `f64` per line — fine at 1000 lines, fatal at a million. A
//! [`QuantileSketch`] replaces the per-line vector with logarithmic
//! buckets of *integer counts*: pushing a value increments one bucket,
//! and merging two sketches is plain `u64` addition bucket by bucket.
//! Integer addition is associative and commutative, so a merged sketch is
//! **bit-identical no matter how the population was grouped** — per line,
//! per batch, per shard, per process — which is exactly the property the
//! fleet's jobs-/batch-/shard-invariance contract needs. (A mergeable
//! *float* summary could not promise this: float addition is not
//! associative.)
//!
//! # Accuracy
//!
//! Buckets grow geometrically with ratio [`GAMMA`]: bucket `k` covers
//! `(γ^(k−1), γ^k]`, and a query returns the bucket's midpoint
//! `γ^k · 2/(γ+1)`. Any value in the bucket is therefore within
//! `α = (γ−1)/(γ+1)` **relative** error of the returned representative —
//! [`QuantileSketch::RELATIVE_ERROR`], ≈ 0.99 % at the default γ = 1.02.
//! Because bucketization is monotone, the rank walk lands in the bucket
//! that contains the true nearest-rank value, so the sketch's
//! nearest-rank quantile carries the same α bound (pinned by proptest
//! against the exact fold). Magnitudes outside
//! `[`[`MIN_MAGNITUDE`]`, `[`MAX_MAGNITUDE`]`]` clamp to the edge
//! buckets; the tracked min/max stay exact regardless.
//!
//! # NaN
//!
//! NaN inputs never enter a bucket or the min/max: they are counted in
//! [`QuantileSketch::nan_count`] and excluded from ranks — the same
//! policy the exact [`Percentiles::of`](crate::fleet::Percentiles::of)
//! applies, so the sketch and exact paths agree on poisoned populations.

use std::collections::BTreeMap;

use crate::fleet::Percentiles;

/// Geometric bucket ratio. `α = (γ−1)/(γ+1) ≈ 0.0099`.
pub const GAMMA: f64 = 1.02;

/// Smallest magnitude resolved by its own bucket; below this (but
/// non-zero) values clamp into the lowest bucket.
pub const MIN_MAGNITUDE: f64 = 1e-9;

/// Largest magnitude resolved by its own bucket; above this values clamp
/// into the highest bucket.
pub const MAX_MAGNITUDE: f64 = 1e9;

/// A deterministic mergeable quantile sketch over `f64` values.
///
/// See the [module docs](self) for the determinism and accuracy story.
#[derive(Debug, Clone, Default)]
pub struct QuantileSketch {
    /// Bucket counts for positive values, keyed by `ceil(log_γ x)`.
    pos: BTreeMap<i32, u64>,
    /// Bucket counts for negative values, keyed by `ceil(log_γ |x|)`.
    neg: BTreeMap<i32, u64>,
    /// Exact zeros (±0.0).
    zero: u64,
    /// NaN inputs — counted, never ranked.
    nan: u64,
    /// Non-NaN values pushed.
    count: u64,
    /// Exact smallest non-NaN value (`NaN` while empty).
    min: f64,
    /// Exact largest non-NaN value (`NaN` while empty).
    max: f64,
}

/// Bucket key bound matching [`MAX_MAGNITUDE`] (`ceil(log_γ 1e9)`).
const MAX_KEY: i32 = 1047;

// Bit-exact equality: the empty sketch carries `NaN` extrema, which the
// derived `PartialEq` would declare unequal to themselves. Two sketches
// are the same sketch iff every bucket count matches and the extrema
// match *as bit patterns* — the same contract the codec round-trips.
impl PartialEq for QuantileSketch {
    fn eq(&self, other: &Self) -> bool {
        self.pos == other.pos
            && self.neg == other.neg
            && self.zero == other.zero
            && self.nan == other.nan
            && self.count == other.count
            && self.min.to_bits() == other.min.to_bits()
            && self.max.to_bits() == other.max.to_bits()
    }
}

impl Eq for QuantileSketch {}

impl QuantileSketch {
    /// Guaranteed relative error of a quantile query for magnitudes within
    /// `[MIN_MAGNITUDE, MAX_MAGNITUDE]`: `(γ−1)/(γ+1)`.
    pub const RELATIVE_ERROR: f64 = (GAMMA - 1.0) / (GAMMA + 1.0);

    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            zero: 0,
            nan: 0,
            count: 0,
            min: f64::NAN,
            max: f64::NAN,
        }
    }

    /// The bucket key for a positive magnitude: `ceil(log_γ m)`, clamped
    /// to the supported range.
    fn key(magnitude: f64) -> i32 {
        let k = (magnitude.ln() / GAMMA.ln()).ceil();
        (k as i32).clamp(-MAX_KEY, MAX_KEY)
    }

    /// The representative value of bucket `k`: the midpoint estimate
    /// `γ^k · 2/(γ+1)`, within [`Self::RELATIVE_ERROR`] of every value
    /// the bucket covers.
    fn representative(key: i32) -> f64 {
        GAMMA.powi(key) * 2.0 / (GAMMA + 1.0)
    }

    /// Adds one value. NaN is counted but excluded from ranks and min/max.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        if x == 0.0 {
            self.zero += 1;
        } else if x > 0.0 {
            *self.pos.entry(Self::key(x)).or_insert(0) += 1;
        } else {
            *self.neg.entry(Self::key(-x)).or_insert(0) += 1;
        }
    }

    /// Folds `other` into `self`. Counts add as integers and min/max
    /// combine exactly, so merging is associative and commutative: any
    /// grouping of the same pushes produces a bit-identical sketch.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.nan += other.nan;
        self.zero += other.zero;
        for (&k, &n) in &other.pos {
            *self.pos.entry(k).or_insert(0) += n;
        }
        for (&k, &n) in &other.neg {
            *self.neg.entry(k).or_insert(0) += n;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
    }

    /// Non-NaN values pushed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// NaN values pushed (excluded from every rank).
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// Exact smallest non-NaN value (`NaN` while empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact largest non-NaN value (`NaN` while empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The nearest-rank `q`-quantile estimate (`q` in `[0, 1]`), within
    /// [`Self::RELATIVE_ERROR`] of the exact nearest-rank value. The
    /// extreme ranks return the tracked min/max exactly. `NaN` while
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let n = self.count;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        if rank == 1 {
            return self.min;
        }
        if rank == n {
            return self.max;
        }
        let mut seen = 0u64;
        // Ascending value order: negatives from largest magnitude down,
        // then zeros, then positives from smallest magnitude up.
        for (&k, &c) in self.neg.iter().rev() {
            seen += c;
            if seen >= rank {
                return self.clamped(-Self::representative(k));
            }
        }
        seen += self.zero;
        if seen >= rank {
            return 0.0;
        }
        for (&k, &c) in &self.pos {
            seen += c;
            if seen >= rank {
                return self.clamped(Self::representative(k));
            }
        }
        self.max
    }

    /// Clamps a bucket representative into the exact observed range.
    fn clamped(&self, x: f64) -> f64 {
        x.max(self.min).min(self.max)
    }

    /// The fleet's population summary from this sketch: exact min/max,
    /// α-bounded p50/p90/p99. All-NaN while empty — identical semantics
    /// to the exact [`Percentiles::of`](crate::fleet::Percentiles::of).
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            min: self.min,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }

    /// Approximate retained heap, bytes (occupied buckets only — the
    /// sketch is O(occupied buckets), independent of how many values were
    /// pushed).
    pub fn heap_bytes(&self) -> usize {
        // BTreeMap node overhead is amortized; 3× the entry payload is a
        // conservative per-entry figure for the memory report.
        (self.pos.len() + self.neg.len()) * 3 * std::mem::size_of::<(i32, u64)>()
    }

    /// Serializes the sketch as one line of text (the checkpoint codec's
    /// building block): counts in decimal, min/max as `f64::to_bits` hex
    /// so the round-trip is bit-exact.
    pub fn encode(&self) -> String {
        let fields = |map: &BTreeMap<i32, u64>| -> String {
            if map.is_empty() {
                return "-".to_string();
            }
            map.iter()
                .map(|(k, v)| format!("{k}:{v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "nan={} zero={} count={} min={:016x} max={:016x} neg={} pos={}",
            self.nan,
            self.zero,
            self.count,
            self.min.to_bits(),
            self.max.to_bits(),
            fields(&self.neg),
            fields(&self.pos),
        )
    }

    /// Parses a sketch serialized by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn decode(text: &str) -> Result<Self, String> {
        let mut sketch = QuantileSketch::new();
        let mut fields = 0u32;
        for token in text.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("sketch field `{token}` has no `=`"))?;
            let bad = |e: &dyn std::fmt::Display| format!("sketch field `{key}`: {e}");
            match key {
                "nan" => sketch.nan = value.parse().map_err(|e| bad(&e))?,
                "zero" => sketch.zero = value.parse().map_err(|e| bad(&e))?,
                "count" => sketch.count = value.parse().map_err(|e| bad(&e))?,
                "min" => {
                    sketch.min =
                        f64::from_bits(u64::from_str_radix(value, 16).map_err(|e| bad(&e))?)
                }
                "max" => {
                    sketch.max =
                        f64::from_bits(u64::from_str_radix(value, 16).map_err(|e| bad(&e))?)
                }
                "neg" | "pos" => {
                    let map = if key == "neg" {
                        &mut sketch.neg
                    } else {
                        &mut sketch.pos
                    };
                    if value != "-" {
                        for entry in value.split(',') {
                            let (k, v) = entry
                                .split_once(':')
                                .ok_or_else(|| format!("sketch bucket `{entry}` has no `:`"))?;
                            map.insert(
                                k.parse().map_err(|e| bad(&e))?,
                                v.parse().map_err(|e| bad(&e))?,
                            );
                        }
                    }
                }
                other => return Err(format!("unknown sketch field `{other}`")),
            }
            fields += 1;
        }
        if fields != 7 {
            return Err(format!("sketch line has {fields} fields, expected 7"));
        }
        Ok(sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: &[f64]) -> QuantileSketch {
        let mut s = QuantileSketch::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    #[test]
    fn empty_sketch_is_all_nan() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert!(s.quantile(0.5).is_nan());
        let p = s.percentiles();
        assert!(p.min.is_nan() && p.p50.is_nan() && p.max.is_nan());
    }

    #[test]
    fn min_max_are_exact_and_mids_are_bounded() {
        let values: Vec<f64> = (1..=500).map(|i| i as f64 * 0.37).collect();
        let s = sketch_of(&values);
        assert_eq!(s.min().to_bits(), (0.37f64).to_bits());
        assert_eq!(s.max().to_bits(), (500.0 * 0.37f64).to_bits());
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.5, 0.9, 0.99] {
            let exact = sorted[((q * sorted.len() as f64).ceil() as usize).max(1) - 1];
            let est = s.quantile(q);
            assert!(
                (est - exact).abs() <= QuantileSketch::RELATIVE_ERROR * exact.abs() + 1e-12,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn nan_is_counted_not_ranked() {
        let s = sketch_of(&[1.0, f64::NAN, 2.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.nan_count(), 2);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert!(s.quantile(0.99).is_finite());
        let all_nan = sketch_of(&[f64::NAN, f64::NAN]);
        assert_eq!(all_nan.nan_count(), 2);
        assert!(all_nan.percentiles().p50.is_nan());
    }

    #[test]
    fn negative_zero_positive_ordering() {
        let s = sketch_of(&[-5.0, -0.5, 0.0, 0.5, 5.0]);
        assert_eq!(s.min(), -5.0);
        assert_eq!(s.max(), 5.0);
        // Rank 3 of 5 is the zero bucket.
        assert_eq!(s.quantile(0.5), 0.0);
        // Rank 2 lands in the small-negative bucket.
        let q = s.quantile(0.25);
        assert!(
            (q + 0.5).abs() <= 0.5 * QuantileSketch::RELATIVE_ERROR + 1e-12,
            "q25 {q}"
        );
    }

    #[test]
    fn merge_equals_bulk_push() {
        let a: Vec<f64> = (0..137).map(|i| (i as f64 * 0.71).sin() * 40.0).collect();
        let b: Vec<f64> = (0..91).map(|i| (i as f64 * 1.13).cos() * 4.0e3).collect();
        let mut merged = sketch_of(&a);
        merged.merge(&sketch_of(&b));
        let mut bulk = QuantileSketch::new();
        for &v in a.iter().chain(&b) {
            bulk.push(v);
        }
        assert_eq!(merged, bulk);
        assert_eq!(merged.encode(), bulk.encode());
    }

    #[test]
    fn encode_decode_round_trips_bit_exact() {
        let s = sketch_of(&[1.5, -2.25, 0.0, f64::NAN, 3.0e6, 1e-7]);
        let decoded = QuantileSketch::decode(&s.encode()).unwrap();
        assert_eq!(s, decoded);
        assert_eq!(s.min().to_bits(), decoded.min().to_bits());
        assert_eq!(s.max().to_bits(), decoded.max().to_bits());
        // Empty round-trips too (NaN min/max bits preserved).
        let empty = QuantileSketch::new();
        let decoded = QuantileSketch::decode(&empty.encode()).unwrap();
        assert_eq!(empty, decoded);
        assert_eq!(empty.min().to_bits(), decoded.min().to_bits());
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        assert!(QuantileSketch::decode("").is_err());
        assert!(QuantileSketch::decode("nan=1").is_err());
        assert!(QuantileSketch::decode("nan=x zero=0 count=0 min=0 max=0 neg=- pos=-").is_err());
        assert!(
            QuantileSketch::decode("nan=0 zero=0 count=0 min=0 max=0 neg=- pos=1:2:3").is_err()
        );
    }

    mod sketch_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Merging is associative bucket-for-bucket: any grouping of
            /// the same values produces a bit-identical sketch. This is
            /// the property the fleet's shard merge stands on.
            #[test]
            fn merge_is_associative(
                xs in proptest::collection::vec(-1.0e4f64..1.0e4, 0..120),
                cut_a in 0usize..120,
                cut_b in 0usize..120,
            ) {
                let a = cut_a.min(xs.len());
                let b = cut_b.min(xs.len()).max(a);
                let (s1, s2, s3) = (
                    sketch_of(&xs[..a]),
                    sketch_of(&xs[a..b]),
                    sketch_of(&xs[b..]),
                );
                // (s1 ⊕ s2) ⊕ s3
                let mut left = s1.clone();
                left.merge(&s2);
                left.merge(&s3);
                // s1 ⊕ (s2 ⊕ s3)
                let mut tail = s2.clone();
                tail.merge(&s3);
                let mut right = s1.clone();
                right.merge(&tail);
                prop_assert_eq!(&left, &right);
                prop_assert_eq!(left.encode(), right.encode());
                // And both equal the unsharded push order.
                prop_assert_eq!(&left, &sketch_of(&xs));
            }

            /// Every quantile estimate is within RELATIVE_ERROR of the
            /// exact nearest-rank value over the same population.
            #[test]
            fn quantiles_match_exact_within_alpha(
                xs in proptest::collection::vec(1.0e-3f64..1.0e3, 1..200),
                q in 0.0f64..=1.0,
            ) {
                let s = sketch_of(&xs);
                let mut sorted = xs.clone();
                sorted.sort_by(f64::total_cmp);
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                let est = s.quantile(q);
                prop_assert!(
                    (est - exact).abs()
                        <= QuantileSketch::RELATIVE_ERROR * exact.abs() + 1e-12,
                    "q={} est={} exact={}", q, est, exact
                );
            }
        }
    }
}
