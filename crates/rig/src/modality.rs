//! Sensing-modality selection and meter adapters for the generic engine.
//!
//! The campaign/fleet layers carry a [`Modality`] tag instead of a meter
//! instance (specs stay `Clone + Serialize`); the executor turns the tag
//! into an [`AnyMeter`] — a closed enum over every modality the rig knows
//! how to build — and drives it through the one generic
//! [`LineRunner`](crate::runner::LineRunner). A closed enum rather than
//! `Box<dyn Meter>` keeps specs comparable, the CTA fast path
//! monomorphized, and the meter extractable by value after a run.
//!
//! Two adapter families live here:
//!
//! * [`ReferenceMeter`] — the standalone behavioural models of the
//!   paper's reference instruments ([`Promag50`], [`TurbineMeter`])
//!   plugged in behind the [`Meter`] trait with no AFE pipeline. A fleet
//!   spec can mix reference lines in as ground-truth comparators: they
//!   read the line's bulk velocity directly (plus their own datasheet
//!   noise/dynamics), never fault, and ignore fault-injection hooks.
//! * [`AnyMeter`] — the dispatch enum the executor builds from a
//!   [`Modality`].

use crate::promag::Promag50;
use crate::turbine::TurbineMeter;
use hotwire_afe::ThermometerDac;
use hotwire_core::config::fnv1a64;
use hotwire_core::direction::FlowDirection;
use hotwire_core::faults::{AdcFault, FaultFlags};
use hotwire_core::heat_pulse::HeatPulseMeter;
use hotwire_core::obs::{EventKind, Observer};
use hotwire_core::{CoreError, FlowMeter, HealthState, Measurement, Meter};
use hotwire_physics::SensorEnvironment;
use hotwire_units::{MetersPerSecond, Seconds, ThermalConductance, Watts};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which instrument a spec's lines carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum Modality {
    /// The paper's CTA MEMS meter (default).
    Cta,
    /// The heat-pulse time-of-flight meter.
    HeatPulse,
    /// A Promag 50 electromagnetic reference line (ground truth).
    PromagRef,
    /// A turbine-wheel reference line (ground truth).
    TurbineRef,
}

impl Modality {
    /// Stable snake_case label (metric keys, logs).
    pub fn name(&self) -> &'static str {
        match self {
            Modality::Cta => "cta",
            Modality::HeatPulse => "heat_pulse",
            Modality::PromagRef => "promag_ref",
            Modality::TurbineRef => "turbine_ref",
        }
    }

    /// The reference instrument this modality wraps, or `None` for the
    /// powered sensing modalities (CTA, heat-pulse).
    pub fn reference_kind(&self) -> Option<ReferenceKind> {
        match self {
            Modality::PromagRef => Some(ReferenceKind::Promag),
            Modality::TurbineRef => Some(ReferenceKind::Turbine),
            Modality::Cta | Modality::HeatPulse => None,
        }
    }
}

/// Which reference instrument a [`ReferenceMeter`] wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum ReferenceKind {
    /// Electromagnetic (Promag 50).
    Promag,
    /// Mechanical turbine wheel.
    Turbine,
}

/// A reference instrument adapted to the [`Meter`] trait.
///
/// The adapter reads the true bulk velocity from the probe environment —
/// reference meters on the evaluation line measure the same water the DUT
/// does, through their own datasheet noise and dynamics. There is no AFE,
/// no calibration storage and no failure model: fault hooks are no-ops
/// and health is permanently [`HealthState::Healthy`]. One control tick
/// per frame; the Promag noise draw (one per tick) comes from a seeded
/// per-meter lane, so reference lines are as deterministic as DUT lines.
#[derive(Debug)]
pub struct ReferenceMeter {
    kind: ReferenceKind,
    promag: Promag50,
    turbine: TurbineMeter,
    rng: StdRng,
    control_dt: Seconds,
    full_scale: MetersPerSecond,
    tick: u64,
    last: MetersPerSecond,
    observer: Option<Box<dyn Observer>>,
}

impl ReferenceMeter {
    /// Ratio of the probe-point (centerline) velocity the runner hands a
    /// meter to the bulk velocity a full-bore instrument reports — the
    /// station's turbulent 1/7-power profile factor. Reference meters
    /// integrate the whole bore, so the adapter divides the probe
    /// environment by this before driving the behavioural models. (The
    /// CTA meter absorbs the same factor through its field calibration.)
    pub fn profile_factor() -> f64 {
        hotwire_physics::pipe::Pipe::profile_factor(1.0e5)
    }

    /// Builds a reference line instrument running at `control_dt` per
    /// tick (deterministic under `seed`).
    pub fn new(
        kind: ReferenceKind,
        full_scale: MetersPerSecond,
        control_dt: Seconds,
        seed: u64,
    ) -> Self {
        ReferenceMeter {
            kind,
            promag: Promag50::new(full_scale),
            turbine: TurbineMeter::dn50(),
            rng: StdRng::seed_from_u64(seed ^ 0x5E_F0_CA_FE),
            control_dt,
            full_scale,
            tick: 0,
            last: MetersPerSecond::ZERO,
            observer: None,
        }
    }

    /// Which instrument this adapter wraps.
    pub fn kind(&self) -> ReferenceKind {
        self.kind
    }
}

impl Meter for ReferenceMeter {
    fn step(&mut self, env: SensorEnvironment) -> Option<Measurement> {
        let bulk = MetersPerSecond::new(env.velocity.get() / Self::profile_factor());
        self.last = match self.kind {
            ReferenceKind::Promag => self.promag.step(self.control_dt, bulk, &mut self.rng),
            ReferenceKind::Turbine => self.turbine.step(self.control_dt, bulk),
        };
        let v = self.last;
        let direction = if v.get() > 0.0 {
            FlowDirection::Forward
        } else if v.get() < 0.0 {
            FlowDirection::Reverse
        } else {
            FlowDirection::Indeterminate
        };
        let m = Measurement {
            velocity: v,
            speed: MetersPerSecond::new(v.get().abs()),
            direction,
            supply_code: 0,
            conditioned_code: 0,
            conductance: ThermalConductance::ZERO,
            wire_power: Watts::ZERO,
            faults: FaultFlags::default(),
            health: HealthState::Healthy,
            tick: self.tick,
        };
        self.tick += 1;
        Some(m)
    }

    fn step_frame(&mut self, env: SensorEnvironment) -> Measurement {
        self.step(env).expect("reference meters emit every tick")
    }

    fn frame_phase(&self) -> u32 {
        0
    }

    fn ticks_per_frame(&self) -> u32 {
        1
    }

    fn control_period(&self) -> Seconds {
        self.control_dt
    }

    fn full_scale(&self) -> MetersPerSecond {
        self.full_scale
    }

    fn health(&self) -> HealthState {
        HealthState::Healthy
    }

    fn power_draw(&self) -> Watts {
        // Mains-powered commercial instruments: not in the probe budget.
        Watts::ZERO
    }

    fn state_digest(&self) -> u64 {
        let rng = self.rng.state();
        let words = [
            self.tick,
            rng[0],
            rng[1],
            rng[2],
            rng[3],
            self.last.get().to_bits(),
            self.promag.reading().get().to_bits(),
            self.turbine.reading().get().to_bits(),
            self.turbine.travel_m().to_bits(),
            match self.kind {
                ReferenceKind::Promag => 1,
                ReferenceKind::Turbine => 2,
            },
        ];
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        fnv1a64(&bytes)
    }

    fn set_observer(&mut self, observer: Box<dyn Observer>) {
        self.observer = Some(observer);
    }

    fn take_observer(&mut self) -> Option<Box<dyn Observer>> {
        self.observer.take()
    }

    fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    fn observe(&mut self, kind: EventKind) {
        if let Some(observer) = self.observer.as_mut() {
            observer.record(hotwire_core::ObsEvent {
                tick: self.tick,
                kind,
            });
        }
    }

    fn reload_calibration(&mut self) -> Result<(), CoreError> {
        // Nothing stored, nothing to lose.
        Ok(())
    }

    fn inject_adc_fault(&mut self, _fault: Option<AdcFault>) {}

    fn degrade_supply(&mut self, _fraction: f64) -> Option<ThermometerDac> {
        None
    }

    fn restore_supply(&mut self, _saved: Option<ThermometerDac>) {}

    fn corrupt_calibration(&mut self, _slot: usize, _byte: usize) {}

    fn inject_bubble_burst(&mut self, _coverage: f64) {}

    fn deposit_fouling(&mut self, _microns: f64) {}

    fn worst_bubble_coverage(&self) -> f64 {
        0.0
    }

    fn worst_fouling_um(&self) -> f64 {
        0.0
    }
}

/// A meter of any modality, dispatching the [`Meter`] trait by `match`.
///
/// This is what the campaign executor builds from a spec's [`Modality`]
/// tag and what [`RunOutcome`](crate::campaign::RunOutcome) hands back.
/// CTA-specific post-processing (power maps, conductance analysis) goes
/// through [`as_cta`](Self::as_cta).
// The CTA variant dwarfs the others, but exactly one `AnyMeter` exists
// per in-flight line (never in bulk collections) and boxing it would put
// a pointer chase on the per-tick hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum AnyMeter {
    /// The CTA MEMS instrument.
    Cta(FlowMeter),
    /// The heat-pulse time-of-flight instrument.
    HeatPulse(HeatPulseMeter),
    /// A reference-line adapter.
    Reference(ReferenceMeter),
}

impl AnyMeter {
    /// The modality tag of this instrument.
    pub fn modality(&self) -> Modality {
        match self {
            AnyMeter::Cta(_) => Modality::Cta,
            AnyMeter::HeatPulse(_) => Modality::HeatPulse,
            AnyMeter::Reference(r) => match r.kind() {
                ReferenceKind::Promag => Modality::PromagRef,
                ReferenceKind::Turbine => Modality::TurbineRef,
            },
        }
    }

    /// The CTA meter inside, if this is the CTA modality.
    pub fn as_cta(&self) -> Option<&FlowMeter> {
        match self {
            AnyMeter::Cta(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable access to the CTA meter inside, if present.
    pub fn as_cta_mut(&mut self) -> Option<&mut FlowMeter> {
        match self {
            AnyMeter::Cta(m) => Some(m),
            _ => None,
        }
    }

    /// The heat-pulse meter inside, if this is the heat-pulse modality.
    pub fn as_heat_pulse(&self) -> Option<&HeatPulseMeter> {
        match self {
            AnyMeter::HeatPulse(m) => Some(m),
            _ => None,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $m:ident => $body:expr) => {
        match $self {
            AnyMeter::Cta($m) => $body,
            AnyMeter::HeatPulse($m) => $body,
            AnyMeter::Reference($m) => $body,
        }
    };
}

impl Meter for AnyMeter {
    fn step(&mut self, env: SensorEnvironment) -> Option<Measurement> {
        dispatch!(self, m => m.step(env))
    }

    fn step_frame(&mut self, env: SensorEnvironment) -> Measurement {
        dispatch!(self, m => m.step_frame(env))
    }

    fn frame_phase(&self) -> u32 {
        dispatch!(self, m => m.frame_phase())
    }

    fn ticks_per_frame(&self) -> u32 {
        dispatch!(self, m => m.ticks_per_frame())
    }

    fn control_period(&self) -> Seconds {
        dispatch!(self, m => m.control_period())
    }

    fn full_scale(&self) -> MetersPerSecond {
        dispatch!(self, m => m.full_scale())
    }

    fn health(&self) -> HealthState {
        dispatch!(self, m => m.health())
    }

    fn power_draw(&self) -> Watts {
        dispatch!(self, m => m.power_draw())
    }

    fn state_digest(&self) -> u64 {
        dispatch!(self, m => m.state_digest())
    }

    fn set_observer(&mut self, observer: Box<dyn Observer>) {
        dispatch!(self, m => m.set_observer(observer))
    }

    fn take_observer(&mut self) -> Option<Box<dyn Observer>> {
        dispatch!(self, m => m.take_observer())
    }

    fn has_observer(&self) -> bool {
        dispatch!(self, m => m.has_observer())
    }

    fn observe(&mut self, kind: EventKind) {
        dispatch!(self, m => m.observe(kind))
    }

    fn reload_calibration(&mut self) -> Result<(), CoreError> {
        dispatch!(self, m => m.reload_calibration())
    }

    fn re_zero(&mut self) {
        dispatch!(self, m => m.re_zero())
    }

    fn refit_from_recent(&mut self) -> bool {
        dispatch!(self, m => m.refit_from_recent())
    }

    fn persist(&mut self) -> Result<(), CoreError> {
        dispatch!(self, m => m.persist())
    }

    fn calibration_age(&self) -> u64 {
        dispatch!(self, m => m.calibration_age())
    }

    fn drift_estimate(&self) -> f64 {
        dispatch!(self, m => m.drift_estimate())
    }

    fn calibration_wear(&self) -> u64 {
        dispatch!(self, m => m.calibration_wear())
    }

    fn fluid_temperature(&self) -> Option<hotwire_units::Celsius> {
        dispatch!(self, m => m.fluid_temperature())
    }

    fn inject_adc_fault(&mut self, fault: Option<AdcFault>) {
        dispatch!(self, m => m.inject_adc_fault(fault))
    }

    fn degrade_supply(&mut self, fraction: f64) -> Option<ThermometerDac> {
        dispatch!(self, m => m.degrade_supply(fraction))
    }

    fn restore_supply(&mut self, saved: Option<ThermometerDac>) {
        dispatch!(self, m => m.restore_supply(saved))
    }

    fn corrupt_calibration(&mut self, slot: usize, byte: usize) {
        dispatch!(self, m => m.corrupt_calibration(slot, byte))
    }

    fn inject_bubble_burst(&mut self, coverage: f64) {
        dispatch!(self, m => m.inject_bubble_burst(coverage))
    }

    fn deposit_fouling(&mut self, microns: f64) {
        dispatch!(self, m => m.deposit_fouling(microns))
    }

    fn worst_bubble_coverage(&self) -> f64 {
        dispatch!(self, m => m.worst_bubble_coverage())
    }

    fn worst_fouling_um(&self) -> f64 {
        dispatch!(self, m => m.worst_fouling_um())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::LineRunner;
    use crate::scenario::Scenario;

    fn env(cm_s: f64) -> SensorEnvironment {
        SensorEnvironment {
            velocity: MetersPerSecond::from_cm_per_s(cm_s),
            ..SensorEnvironment::still_water()
        }
    }

    #[test]
    fn promag_reference_tracks_truth() {
        let mut m = ReferenceMeter::new(
            ReferenceKind::Promag,
            MetersPerSecond::from_cm_per_s(300.0),
            Seconds::new(0.002),
            7,
        );
        // The runner hands the probe-point velocity: bulk × profile factor.
        let probe = 120.0 * ReferenceMeter::profile_factor();
        let mut last = MetersPerSecond::ZERO;
        for _ in 0..500 {
            last = m.step(env(probe)).unwrap().velocity;
        }
        assert!((last.to_cm_per_s() - 120.0).abs() < 5.0);
        assert_eq!(m.health(), HealthState::Healthy);
    }

    #[test]
    fn turbine_reference_through_generic_runner() {
        let m = ReferenceMeter::new(
            ReferenceKind::Turbine,
            MetersPerSecond::from_cm_per_s(300.0),
            Seconds::new(0.002),
            8,
        );
        let mut runner = LineRunner::new(Scenario::steady(150.0, 2.0), m, 8);
        let trace = runner.run(0.05);
        let last = trace.last().unwrap();
        // The DUT is the same behavioural model as the runner's own
        // turbine reference channel, fed the same bulk one tick apart —
        // the two trajectories must agree tightly (spin-up inertia and
        // the meter's systematic under-read affect both identically).
        assert!(
            (last.dut_cm_s - last.turbine_cm_s).abs() < 2.0,
            "turbine DUT {} vs reference channel {}",
            last.dut_cm_s,
            last.turbine_cm_s
        );
        assert!(last.dut_cm_s > 100.0);
    }

    #[test]
    fn reference_fault_hooks_are_inert() {
        let mut a = ReferenceMeter::new(
            ReferenceKind::Promag,
            MetersPerSecond::from_cm_per_s(300.0),
            Seconds::new(0.002),
            9,
        );
        let mut b = ReferenceMeter::new(
            ReferenceKind::Promag,
            MetersPerSecond::from_cm_per_s(300.0),
            Seconds::new(0.002),
            9,
        );
        b.inject_adc_fault(Some(AdcFault::Stuck(0)));
        let saved = b.degrade_supply(0.1);
        b.restore_supply(saved);
        b.corrupt_calibration(0, 0);
        b.inject_bubble_burst(0.9);
        b.deposit_fouling(100.0);
        assert!(b.reload_calibration().is_ok());
        for _ in 0..200 {
            assert_eq!(a.step(env(90.0)), b.step(env(90.0)));
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn any_meter_dispatches_and_digests() {
        let mut any = AnyMeter::Reference(ReferenceMeter::new(
            ReferenceKind::Promag,
            MetersPerSecond::from_cm_per_s(300.0),
            Seconds::new(0.002),
            10,
        ));
        assert_eq!(any.modality(), Modality::PromagRef);
        assert!(any.as_cta().is_none());
        let d0 = any.state_digest();
        any.step(env(50.0));
        assert_ne!(d0, any.state_digest());
    }
}
