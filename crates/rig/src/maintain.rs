//! Deterministic maintenance policies: when to re-zero, refit, persist.
//!
//! §6 of the paper argues for diffuse deployment of many cheap meters;
//! at fleet scale nobody walks a technician to a pit to re-zero a drifted
//! probe. This module is the firmware-side answer: a per-line policy
//! engine that watches the instrument's own drift/health/temperature
//! observables and decides, once per control tick, whether to run one of
//! the calibration-surface actions of the [`Meter`] trait —
//! [`re_zero`](Meter::re_zero), [`refit_from_recent`](Meter::refit_from_recent),
//! [`persist`](Meter::persist). Because the engine speaks only that
//! trait surface it manages the CTA and heat-pulse modalities with the
//! same code, and the `f4_maintenance` experiment can sweep policies
//! across a mixed-modality fleet.
//!
//! ## Determinism contract
//!
//! The engine draws **no** RNG: every decision is a pure function of the
//! meter's observables and the engine's own tick counter, so a
//! policy-managed line stays bit-identical at any `--jobs` count and
//! across checkpoint kill/resume (fleet lines are atomic — an
//! interrupted line reruns from scratch, so in-flight engine state never
//! needs to serialize; only the finished [`MaintenanceCounters`] ride
//! the line summaries into checkpoints). The runner calls
//! [`MaintenanceEngine::service`] exactly once per *produced*
//! measurement — one control tick — which makes the engine's clock
//! identical between the frame-batched hot path and scalar stepping.
//!
//! ## Wear economics
//!
//! Persisting a refit calibration survives a power cycle but costs one
//! EEPROM write cycle on both redundant slots. The engine rate-limits
//! persists two ways: a wall-clock-equivalent minimum interval, and a
//! hard per-slot wear budget read back from
//! [`calibration_wear`](Meter::calibration_wear) (which the EEPROM model
//! tracks per slot — erases do not heal cells). Skipped persists are
//! counted so the f4 frontier can price each policy in write cycles.

use hotwire_core::obs::EventKind;
use hotwire_core::{HealthState, Meter};
use hotwire_units::Seconds;

/// When a line's calibration gets serviced.
///
/// `Scheduled` is the naive fleet-management baseline (refit every
/// period, drifted or not); `EventTriggered` services only when the
/// instrument's own observables say something moved; `Hybrid` combines
/// both (events catch fast excursions, the schedule bounds the worst-case
/// calibration age). `None` is the do-nothing control arm of the f4
/// frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Never service (the unmanaged control arm).
    None,
    /// Refit (and persist, wear permitting) every `period_s` of
    /// calibration age, unconditionally.
    Scheduled {
        /// Calibration age, in seconds, that triggers a refit.
        period_s: f64,
    },
    /// Service only when an instrument observable crosses a threshold.
    EventTriggered {
        /// Re-zero when the supervisor reports `Degraded`/`Faulted`.
        on_degraded: bool,
        /// Refit when `|drift_estimate|` exceeds this fraction.
        drift_threshold: f64,
        /// Refit when the fluid temperature moves this far (°C) from the
        /// anchor observed at the last service. Instruments without a
        /// temperature channel never fire this trigger.
        temp_delta_c: f64,
    },
    /// Union of `Scheduled` and `EventTriggered` triggers.
    Hybrid {
        /// Calibration age, in seconds, that triggers a refit.
        period_s: f64,
        /// Re-zero when the supervisor reports `Degraded`/`Faulted`.
        on_degraded: bool,
        /// Refit when `|drift_estimate|` exceeds this fraction.
        drift_threshold: f64,
        /// Refit when the fluid temperature moves this far (°C) from the
        /// last service anchor.
        temp_delta_c: f64,
    },
}

impl Policy {
    /// Stable snake_case label (metric keys, f4 frontier rows).
    pub fn name(&self) -> &'static str {
        match self {
            Policy::None => "none",
            Policy::Scheduled { .. } => "scheduled",
            Policy::EventTriggered { .. } => "event_triggered",
            Policy::Hybrid { .. } => "hybrid",
        }
    }
}

/// A policy plus its service-rate and wear limits — what a
/// [`RunSpec`](crate::RunSpec) / [`FleetSpec`](crate::FleetSpec) carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Maintenance {
    /// The trigger policy.
    pub policy: Policy,
    /// Minimum seconds between any two service actions on one line
    /// (debounces a trigger that stays asserted).
    pub min_service_interval_s: f64,
    /// Hard per-slot EEPROM wear ceiling: no persist runs once
    /// [`Meter::calibration_wear`] reaches this many write cycles.
    pub persist_budget: u64,
    /// Minimum seconds between persists (refits in between stay RAM-only).
    pub persist_min_interval_s: f64,
}

impl Maintenance {
    /// A maintenance config with the given policy and the default
    /// rate/wear limits.
    pub fn new(policy: Policy) -> Self {
        Maintenance {
            policy,
            ..Maintenance::default()
        }
    }

    /// Sets the minimum interval between service actions.
    #[must_use]
    pub fn with_min_service_interval(mut self, seconds: f64) -> Self {
        self.min_service_interval_s = seconds;
        self
    }

    /// Sets the per-slot EEPROM wear budget.
    #[must_use]
    pub fn with_persist_budget(mut self, write_cycles: u64) -> Self {
        self.persist_budget = write_cycles;
        self
    }

    /// Sets the minimum interval between persists.
    #[must_use]
    pub fn with_persist_min_interval(mut self, seconds: f64) -> Self {
        self.persist_min_interval_s = seconds;
        self
    }

    /// Whether this config ever acts (used by the executor to skip
    /// building an engine at all).
    pub fn is_active(&self) -> bool {
        self.policy != Policy::None
    }
}

impl Default for Maintenance {
    /// No policy; limits tuned for the paper's 500 Hz control loop
    /// (5 s debounce, 60 s persist interval, 10 k-cycle EEPROM budget).
    fn default() -> Self {
        Maintenance {
            policy: Policy::None,
            min_service_interval_s: 5.0,
            persist_budget: 10_000,
            persist_min_interval_s: 60.0,
        }
    }
}

/// What a policy engine did over one line — the recalibration-cost side
/// of the f4 frontier. Merges like the fleet's other aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct MaintenanceCounters {
    /// Drift-reference re-zeros (no calibration change).
    pub re_zeros: u64,
    /// In-RAM calibration refits.
    pub refits: u64,
    /// Refits persisted to EEPROM (two slot writes each).
    pub persists: u64,
    /// Persists withheld by the wear budget or persist interval.
    pub persists_skipped: u64,
}

impl MaintenanceCounters {
    /// Folds another line's counters into this accumulator.
    pub fn merge(&mut self, other: &MaintenanceCounters) {
        self.re_zeros += other.re_zeros;
        self.refits += other.refits;
        self.persists += other.persists;
        self.persists_skipped += other.persists_skipped;
    }

    /// Total service actions (re-zeros + refits; persists ride refits).
    pub fn actions(&self) -> u64 {
        self.re_zeros + self.refits
    }
}

/// The per-line policy executor.
///
/// Built by the campaign executor from a [`Maintenance`] config and the
/// meter's control period (all second-valued limits convert to whole
/// control ticks once, up front — no float accumulation at run time).
/// [`service`](Self::service) is the single entry point; see the
/// [module docs](self) for when the runner calls it.
#[derive(Debug, Clone)]
pub struct MaintenanceEngine {
    cfg: Maintenance,
    /// `Scheduled`/`Hybrid` period in control ticks.
    period_ticks: Option<u64>,
    /// `EventTriggered`/`Hybrid` drift threshold (fraction).
    drift_threshold: Option<f64>,
    /// `EventTriggered`/`Hybrid` temperature delta (°C).
    temp_delta_c: Option<f64>,
    /// Re-zero on `Degraded`/`Faulted` health.
    on_degraded: bool,
    min_interval_ticks: u64,
    persist_interval_ticks: u64,
    /// Engine clock: one per [`service`](Self::service) call.
    tick: u64,
    last_service_tick: u64,
    last_persist_tick: Option<u64>,
    /// Fluid temperature at the last service (or first observation).
    temp_anchor_c: Option<f64>,
    counters: MaintenanceCounters,
}

impl MaintenanceEngine {
    /// Builds an engine for a meter running at `control_period` per tick.
    pub fn new(cfg: Maintenance, control_period: Seconds) -> Self {
        let ticks_of = |s: f64| ((s / control_period.get()).round() as u64).max(1);
        let (period_ticks, drift_threshold, temp_delta_c, on_degraded) = match cfg.policy {
            Policy::None => (None, None, None, false),
            Policy::Scheduled { period_s } => (Some(ticks_of(period_s)), None, None, false),
            Policy::EventTriggered {
                on_degraded,
                drift_threshold,
                temp_delta_c,
            } => (
                None,
                Some(drift_threshold.abs()),
                Some(temp_delta_c.abs()),
                on_degraded,
            ),
            Policy::Hybrid {
                period_s,
                on_degraded,
                drift_threshold,
                temp_delta_c,
            } => (
                Some(ticks_of(period_s)),
                Some(drift_threshold.abs()),
                Some(temp_delta_c.abs()),
                on_degraded,
            ),
        };
        MaintenanceEngine {
            min_interval_ticks: ticks_of(cfg.min_service_interval_s.max(0.0)),
            persist_interval_ticks: ticks_of(cfg.persist_min_interval_s.max(0.0)),
            cfg,
            period_ticks,
            drift_threshold,
            temp_delta_c,
            on_degraded,
            tick: 0,
            last_service_tick: 0,
            last_persist_tick: None,
            temp_anchor_c: None,
            counters: MaintenanceCounters::default(),
        }
    }

    /// The config this engine was built from.
    pub fn config(&self) -> &Maintenance {
        &self.cfg
    }

    /// Actions taken so far.
    pub fn counters(&self) -> MaintenanceCounters {
        self.counters
    }

    /// One policy evaluation — call exactly once per produced measurement
    /// (= one control tick). Never draws RNG; any action runs at this
    /// frame boundary, between the meter's RNG-consuming steps.
    pub fn service<M: Meter + ?Sized>(&mut self, meter: &mut M) {
        self.tick += 1;
        if self.cfg.policy == Policy::None {
            return;
        }
        let temp = meter.fluid_temperature().map(|c| c.get());
        if self.temp_anchor_c.is_none() {
            // First observed temperature seeds the anchor (no service).
            self.temp_anchor_c = temp;
        }
        if self.tick - self.last_service_tick < self.min_interval_ticks {
            return;
        }
        let due_scheduled = self
            .period_ticks
            .is_some_and(|p| meter.calibration_age() >= p);
        let due_drift = self
            .drift_threshold
            .is_some_and(|t| meter.drift_estimate().abs() > t);
        let due_temp = match (self.temp_delta_c, temp, self.temp_anchor_c) {
            (Some(delta), Some(t), Some(anchor)) => (t - anchor).abs() > delta,
            _ => false,
        };
        let degraded = self.on_degraded
            && matches!(meter.health(), HealthState::Degraded | HealthState::Faulted);
        let want_refit = due_scheduled || due_drift || due_temp;
        if !(want_refit || degraded) {
            return;
        }
        // Every fired trigger consumes the debounce window, acted or not
        // — a zero-drift scheduled trigger must not re-poll every tick.
        self.last_service_tick = self.tick;
        if want_refit && meter.refit_from_recent() {
            self.counters.refits += 1;
            meter.observe(EventKind::CalibrationRefit);
            self.temp_anchor_c = temp.or(self.temp_anchor_c);
            let wear_ok = meter.calibration_wear() < self.cfg.persist_budget;
            let interval_ok = match self.last_persist_tick {
                Some(last) => self.tick - last >= self.persist_interval_ticks,
                None => true,
            };
            if wear_ok && interval_ok {
                if meter.persist().is_ok() {
                    self.counters.persists += 1;
                    meter.observe(EventKind::CalibrationPersisted);
                    self.last_persist_tick = Some(self.tick);
                }
            } else {
                self.counters.persists_skipped += 1;
            }
        } else {
            // Nothing to refit (zero measured drift) or a health-only
            // trigger: accept the operating point as the new reference.
            meter.re_zero();
            self.counters.re_zeros += 1;
            meter.observe(EventKind::CalibrationReZeroed);
            self.temp_anchor_c = temp.or(self.temp_anchor_c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_afe::ThermometerDac;
    use hotwire_core::direction::FlowDirection;
    use hotwire_core::faults::{AdcFault, FaultFlags};
    use hotwire_core::obs::Observer;
    use hotwire_core::{CoreError, Measurement};
    use hotwire_physics::SensorEnvironment;
    use hotwire_units::{Celsius, MetersPerSecond, ThermalConductance, Watts};

    /// A scriptable stand-in exposing just the calibration surface.
    #[derive(Debug, Default)]
    struct StubMeter {
        age: u64,
        drift: f64,
        wear: u64,
        temp: Option<f64>,
        health: HealthState,
        re_zeros: u64,
        refits: u64,
        persists: u64,
        /// When `false`, `refit_from_recent` reports nothing to correct.
        refit_effective: bool,
    }

    impl Meter for StubMeter {
        fn step(&mut self, _env: SensorEnvironment) -> Option<Measurement> {
            Some(Measurement {
                velocity: MetersPerSecond::ZERO,
                speed: MetersPerSecond::ZERO,
                direction: FlowDirection::Indeterminate,
                supply_code: 0,
                conditioned_code: 0,
                conductance: ThermalConductance::ZERO,
                wire_power: Watts::ZERO,
                faults: FaultFlags::default(),
                health: self.health,
                tick: 0,
            })
        }
        fn step_frame(&mut self, env: SensorEnvironment) -> Measurement {
            self.step(env).unwrap()
        }
        fn frame_phase(&self) -> u32 {
            0
        }
        fn ticks_per_frame(&self) -> u32 {
            1
        }
        fn control_period(&self) -> Seconds {
            Seconds::new(0.002)
        }
        fn full_scale(&self) -> MetersPerSecond {
            MetersPerSecond::from_cm_per_s(300.0)
        }
        fn health(&self) -> HealthState {
            self.health
        }
        fn power_draw(&self) -> Watts {
            Watts::ZERO
        }
        fn state_digest(&self) -> u64 {
            0
        }
        fn set_observer(&mut self, _observer: Box<dyn Observer>) {}
        fn take_observer(&mut self) -> Option<Box<dyn Observer>> {
            None
        }
        fn has_observer(&self) -> bool {
            false
        }
        fn observe(&mut self, _kind: EventKind) {}
        fn reload_calibration(&mut self) -> Result<(), CoreError> {
            Ok(())
        }
        fn re_zero(&mut self) {
            self.re_zeros += 1;
            self.drift = 0.0;
        }
        fn refit_from_recent(&mut self) -> bool {
            if !self.refit_effective || self.drift == 0.0 {
                return false;
            }
            self.refits += 1;
            self.drift = 0.0;
            self.age = 0;
            true
        }
        fn persist(&mut self) -> Result<(), CoreError> {
            self.persists += 1;
            self.wear += 1;
            Ok(())
        }
        fn calibration_age(&self) -> u64 {
            self.age
        }
        fn drift_estimate(&self) -> f64 {
            self.drift
        }
        fn calibration_wear(&self) -> u64 {
            self.wear
        }
        fn fluid_temperature(&self) -> Option<Celsius> {
            self.temp.map(Celsius::new)
        }
        fn inject_adc_fault(&mut self, _fault: Option<AdcFault>) {}
        fn degrade_supply(&mut self, _fraction: f64) -> Option<ThermometerDac> {
            None
        }
        fn restore_supply(&mut self, _saved: Option<ThermometerDac>) {}
        fn corrupt_calibration(&mut self, _slot: usize, _byte: usize) {}
        fn inject_bubble_burst(&mut self, _coverage: f64) {}
        fn deposit_fouling(&mut self, _microns: f64) {}
        fn worst_bubble_coverage(&self) -> f64 {
            0.0
        }
        fn worst_fouling_um(&self) -> f64 {
            0.0
        }
    }

    fn drifted() -> StubMeter {
        StubMeter {
            drift: 0.10,
            refit_effective: true,
            ..StubMeter::default()
        }
    }

    #[test]
    fn policy_none_never_acts() {
        let mut eng = MaintenanceEngine::new(Maintenance::default(), Seconds::new(0.002));
        let mut m = drifted();
        m.age = u64::MAX;
        m.health = HealthState::Faulted;
        for _ in 0..10_000 {
            eng.service(&mut m);
        }
        assert_eq!(eng.counters(), MaintenanceCounters::default());
        assert_eq!((m.re_zeros, m.refits, m.persists), (0, 0, 0));
    }

    #[test]
    fn scheduled_policy_refits_and_persists_on_period() {
        let cfg = Maintenance::new(Policy::Scheduled { period_s: 1.0 })
            .with_min_service_interval(0.002)
            .with_persist_min_interval(0.002);
        let mut eng = MaintenanceEngine::new(cfg, Seconds::new(0.002));
        let mut m = drifted();
        for _ in 0..499 {
            m.age += 1;
            eng.service(&mut m);
        }
        assert_eq!(m.refits, 0, "age below the period must not trigger");
        m.age = 500;
        eng.service(&mut m);
        assert_eq!(m.refits, 1);
        assert_eq!(m.persists, 1, "a successful refit persists");
        assert_eq!(eng.counters().refits, 1);
        assert_eq!(eng.counters().persists, 1);
    }

    #[test]
    fn scheduled_zero_drift_falls_back_to_re_zero() {
        let cfg =
            Maintenance::new(Policy::Scheduled { period_s: 1.0 }).with_min_service_interval(0.002);
        let mut eng = MaintenanceEngine::new(cfg, Seconds::new(0.002));
        let mut m = StubMeter {
            age: 10_000,
            refit_effective: true,
            ..StubMeter::default()
        };
        eng.service(&mut m);
        assert_eq!(m.refits, 0);
        assert_eq!(m.re_zeros, 1, "nothing to refit: schedule re-zeros");
        assert_eq!(m.persists, 0, "no refit, no persist");
        assert_eq!(eng.counters().re_zeros, 1);
    }

    #[test]
    fn event_policy_fires_on_drift_threshold() {
        let cfg = Maintenance::new(Policy::EventTriggered {
            on_degraded: false,
            drift_threshold: 0.05,
            temp_delta_c: 1e9,
        })
        .with_min_service_interval(0.002)
        .with_persist_min_interval(0.002);
        let mut eng = MaintenanceEngine::new(cfg, Seconds::new(0.002));
        let mut m = drifted();
        m.drift = 0.03;
        eng.service(&mut m);
        assert_eq!(m.refits, 0, "drift inside the threshold is tolerated");
        m.drift = 0.08;
        eng.service(&mut m);
        assert_eq!(m.refits, 1);
        assert_eq!(m.persists, 1);
    }

    #[test]
    fn event_policy_re_zeros_on_degraded_health() {
        let cfg = Maintenance::new(Policy::EventTriggered {
            on_degraded: true,
            drift_threshold: 1e9,
            temp_delta_c: 1e9,
        })
        .with_min_service_interval(0.002);
        let mut eng = MaintenanceEngine::new(cfg, Seconds::new(0.002));
        let mut m = StubMeter {
            refit_effective: true,
            ..StubMeter::default()
        };
        eng.service(&mut m);
        assert_eq!(m.re_zeros, 0, "healthy line left alone");
        m.health = HealthState::Degraded;
        eng.service(&mut m);
        assert_eq!(m.re_zeros, 1);
        assert_eq!(m.refits, 0, "health trigger alone never refits");
    }

    #[test]
    fn temperature_excursion_triggers_and_reanchors() {
        let cfg = Maintenance::new(Policy::EventTriggered {
            on_degraded: false,
            drift_threshold: 1e9,
            temp_delta_c: 2.0,
        })
        .with_min_service_interval(0.002)
        .with_persist_min_interval(0.002);
        let mut eng = MaintenanceEngine::new(cfg, Seconds::new(0.002));
        let mut m = drifted();
        m.temp = Some(20.0);
        eng.service(&mut m); // anchors at 20 °C
        m.temp = Some(21.5);
        eng.service(&mut m);
        assert_eq!(m.refits, 0, "1.5 °C is inside the 2 °C band");
        m.temp = Some(22.5);
        m.drift = 0.10;
        eng.service(&mut m);
        assert_eq!(m.refits, 1, "2.5 °C from anchor fires");
        // Re-anchored at 22.5: the same temperature again stays quiet.
        m.drift = 0.10;
        eng.service(&mut m);
        assert_eq!(m.refits, 1);
    }

    #[test]
    fn min_service_interval_debounces() {
        let cfg = Maintenance::new(Policy::EventTriggered {
            on_degraded: true,
            drift_threshold: 1e9,
            temp_delta_c: 1e9,
        })
        .with_min_service_interval(1.0); // 500 ticks at 2 ms
        let mut eng = MaintenanceEngine::new(cfg, Seconds::new(0.002));
        let mut m = StubMeter {
            health: HealthState::Faulted,
            ..StubMeter::default()
        };
        for _ in 0..2000 {
            eng.service(&mut m);
        }
        assert_eq!(
            m.re_zeros, 4,
            "a held trigger acts once per debounce window (ticks 500/1000/1500/2000)"
        );
    }

    #[test]
    fn persist_budget_and_interval_rate_limit() {
        let cfg = Maintenance::new(Policy::EventTriggered {
            on_degraded: false,
            drift_threshold: 0.05,
            temp_delta_c: 1e9,
        })
        .with_min_service_interval(0.002)
        .with_persist_min_interval(0.002)
        .with_persist_budget(2);
        let mut eng = MaintenanceEngine::new(cfg, Seconds::new(0.002));
        let mut m = drifted();
        for _ in 0..5 {
            m.drift = 0.10; // re-drift between services
            eng.service(&mut m);
        }
        assert_eq!(m.refits, 5, "refits are not wear-limited");
        assert_eq!(m.persists, 2, "wear budget caps persists");
        assert_eq!(eng.counters().persists_skipped, 3);

        // Interval limiting, independent of wear.
        let cfg = Maintenance::new(Policy::EventTriggered {
            on_degraded: false,
            drift_threshold: 0.05,
            temp_delta_c: 1e9,
        })
        .with_min_service_interval(0.002)
        .with_persist_min_interval(1.0); // 500 ticks
        let mut eng = MaintenanceEngine::new(cfg, Seconds::new(0.002));
        let mut m = drifted();
        for _ in 0..400 {
            m.drift = 0.10;
            eng.service(&mut m);
        }
        assert_eq!(m.persists, 1, "only the first refit inside 1 s persists");
        assert_eq!(
            eng.counters().persists_skipped as usize + 1,
            m.refits as usize
        );
    }

    #[test]
    fn counters_merge_adds_fields() {
        let mut a = MaintenanceCounters {
            re_zeros: 1,
            refits: 2,
            persists: 3,
            persists_skipped: 4,
        };
        let b = MaintenanceCounters {
            re_zeros: 10,
            refits: 20,
            persists: 30,
            persists_skipped: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            MaintenanceCounters {
                re_zeros: 11,
                refits: 22,
                persists: 33,
                persists_skipped: 44,
            }
        );
        assert_eq!(a.actions(), 33);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(Policy::None.name(), "none");
        assert_eq!(Policy::Scheduled { period_s: 1.0 }.name(), "scheduled");
        assert_eq!(
            Policy::EventTriggered {
                on_degraded: true,
                drift_threshold: 0.05,
                temp_delta_c: 2.0
            }
            .name(),
            "event_triggered"
        );
        assert_eq!(
            Policy::Hybrid {
                period_s: 1.0,
                on_degraded: true,
                drift_threshold: 0.05,
                temp_delta_c: 2.0
            }
            .name(),
            "hybrid"
        );
    }
}
