//! Piecewise schedules for flow, pressure and temperature.

use hotwire_units::Seconds;

/// One piecewise-linear segment: holds `start` and ramps linearly to `end`
/// over `duration`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Segment {
    /// Value at the start of the segment.
    pub start: f64,
    /// Value at the end of the segment.
    pub end: f64,
    /// Segment duration in seconds.
    pub duration: f64,
}

/// A piecewise-linear schedule of a scalar quantity over time.
///
/// ```
/// use hotwire_rig::Schedule;
///
/// let s = Schedule::constant(1.0)
///     .then_ramp(2.0, 5.0)   // ramp 1→2 over 5 s
///     .then_hold(2.0, 10.0); // hold 2 for 10 s
/// assert_eq!(s.value_at(0.0), 1.0);
/// assert!((s.value_at(2.5) - 1.5).abs() < 1e-12);
/// assert_eq!(s.value_at(100.0), 2.0); // clamps to the last value
/// ```
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Schedule {
    segments: Vec<Segment>,
}

impl Schedule {
    /// A schedule that holds `value` forever.
    pub fn constant(value: f64) -> Self {
        Schedule {
            segments: vec![Segment {
                start: value,
                end: value,
                duration: f64::INFINITY,
            }],
        }
    }

    /// An empty schedule to be built with the `then_*` methods (reads 0.0
    /// until the first segment is added).
    pub fn new() -> Self {
        Schedule::default()
    }

    fn last_value(&self) -> f64 {
        self.segments.last().map(|s| s.end).unwrap_or(0.0)
    }

    fn push(&mut self, segment: Segment) {
        // Make earlier `constant` segments finite so later ones are
        // reachable.
        if let Some(last) = self.segments.last_mut() {
            if last.duration.is_infinite() {
                last.duration = 0.0;
            }
        }
        self.segments.push(segment);
    }

    /// Appends a hold at `value` for `duration` seconds.
    #[must_use]
    pub fn then_hold(mut self, value: f64, duration: f64) -> Self {
        self.push(Segment {
            start: value,
            end: value,
            duration,
        });
        self
    }

    /// Appends a linear ramp from the current end value to `target`.
    #[must_use]
    pub fn then_ramp(mut self, target: f64, duration: f64) -> Self {
        let from = self.last_value();
        self.push(Segment {
            start: from,
            end: target,
            duration,
        });
        self
    }

    /// Appends a step (instant jump) to `value` held for `duration`.
    #[must_use]
    pub fn then_step(self, value: f64, duration: f64) -> Self {
        self.then_hold(value, duration)
    }

    /// A staircase visiting each level for `dwell` seconds (instant
    /// transitions) — the shape of the paper's Fig. 11 evaluation.
    pub fn staircase(levels: &[f64], dwell: f64) -> Self {
        let mut s = Schedule::new();
        for &level in levels {
            s = s.then_hold(level, dwell);
        }
        s
    }

    /// A diurnal water-demand curve over one `day_s`-second "day":
    /// overnight minimum, a morning rise to `peak`, a midday plateau
    /// between the extremes, an evening peak, and the fall back to the
    /// overnight floor. The shape of a municipal demand profile,
    /// piecewise-linear so fleets stay bit-deterministic.
    ///
    /// ```
    /// use hotwire_rig::Schedule;
    ///
    /// let day = Schedule::diurnal(20.0, 220.0, 240.0);
    /// assert_eq!(day.value_at(0.0), 20.0);            // overnight
    /// assert_eq!(day.value_at(0.75 * 240.0), 220.0);  // evening peak
    /// assert_eq!(day.duration().get(), 240.0);
    /// ```
    pub fn diurnal(min: f64, peak: f64, day_s: f64) -> Self {
        let midday = 0.5 * (min + peak);
        // Fractions of the day: night hold, morning rise, morning peak,
        // relax to midday, midday plateau, evening rise, evening peak,
        // night fall, night hold. They sum to 1.
        Schedule::new()
            .then_hold(min, 0.15 * day_s)
            .then_ramp(peak, 0.10 * day_s)
            .then_hold(peak, 0.05 * day_s)
            .then_ramp(midday, 0.10 * day_s)
            .then_hold(midday, 0.20 * day_s)
            .then_ramp(peak, 0.10 * day_s)
            .then_hold(peak, 0.10 * day_s)
            .then_ramp(min, 0.10 * day_s)
            .then_hold(min, 0.10 * day_s)
    }

    /// A pressure-transient profile: hold `floor_bar`, ramp to
    /// `working_bar`, then `peaks` water-hammer spikes to `peak_bar`
    /// (each a `0.2 × dwell_s` step) separated by `dwell_s` holds at the
    /// working pressure, and a ramp back down to the floor. The
    /// parameterized generalization of [`Scenario::pressure_torture`]'s
    /// hard-coded 0–3 bar / 7 bar-peak profile.
    pub fn pressure_transients(
        floor_bar: f64,
        working_bar: f64,
        peak_bar: f64,
        peaks: usize,
        dwell_s: f64,
    ) -> Self {
        let mut s = Schedule::new()
            .then_hold(floor_bar, dwell_s)
            .then_ramp(working_bar, 2.0 * dwell_s);
        for _ in 0..peaks {
            s = s
                .then_hold(working_bar, dwell_s)
                .then_step(peak_bar, 0.2 * dwell_s);
        }
        s.then_step(working_bar, dwell_s)
            .then_ramp(floor_bar, dwell_s)
            .then_hold(floor_bar, dwell_s)
    }

    /// A seasonal water-temperature sweep over one `year_s`-second
    /// "year": hold the winter minimum, ramp to the summer maximum, hold,
    /// and ramp back — the slow thermal cycle a deployed meter's
    /// temperature compensation must ride out (see
    /// [`TempCorrect`](hotwire_core::TempCorrect)).
    pub fn seasonal(winter_c: f64, summer_c: f64, year_s: f64) -> Self {
        Schedule::new()
            .then_hold(winter_c, 0.10 * year_s)
            .then_ramp(summer_c, 0.40 * year_s)
            .then_hold(summer_c, 0.10 * year_s)
            .then_ramp(winter_c, 0.40 * year_s)
    }

    /// The same schedule with every value multiplied by `factor` (segment
    /// timing untouched). This is how the fleet layer jitters a scenario
    /// template per line without reaching into the segment list.
    ///
    /// ```
    /// use hotwire_rig::Schedule;
    ///
    /// let s = Schedule::staircase(&[100.0, 200.0], 5.0).scaled(1.1);
    /// assert!((s.value_at(1.0) - 110.0).abs() < 1e-12);
    /// assert!((s.value_at(6.0) - 220.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Schedule {
            segments: self
                .segments
                .iter()
                .map(|s| Segment {
                    start: s.start * factor,
                    end: s.end * factor,
                    duration: s.duration,
                })
                .collect(),
        }
    }

    /// Total scheduled duration (infinite for `constant`).
    pub fn duration(&self) -> Seconds {
        Seconds::new(self.segments.iter().map(|s| s.duration).sum())
    }

    /// The schedule value at time `t` (seconds); clamps to the final value
    /// beyond the end.
    pub fn value_at(&self, t: f64) -> f64 {
        let mut remaining = t.max(0.0);
        for seg in &self.segments {
            if remaining < seg.duration {
                if seg.duration.is_infinite() || seg.duration == 0.0 {
                    return seg.start;
                }
                let x = remaining / seg.duration;
                return seg.start + (seg.end - seg.start) * x;
            }
            remaining -= seg.duration;
        }
        self.last_value()
    }
}

/// A complete line scenario: bulk flow (cm/s), absolute pressure (bar) and
/// fluid temperature (°C) schedules.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Scenario {
    /// Bulk flow speed in cm/s (signed; negative = reverse).
    pub flow_cm_s: Schedule,
    /// Line pressure in bar.
    pub pressure_bar: Schedule,
    /// Fluid temperature in °C.
    pub temperature_c: Schedule,
    /// Scenario length in seconds.
    pub duration_s: f64,
}

impl Scenario {
    /// A steady operating point.
    pub fn steady(flow_cm_s: f64, duration_s: f64) -> Self {
        Scenario {
            flow_cm_s: Schedule::constant(flow_cm_s),
            pressure_bar: Schedule::constant(1.0),
            temperature_c: Schedule::constant(15.0),
            duration_s,
        }
    }

    /// The Fig. 11 evaluation: a staircase up through the station's range
    /// and back down, at 1 bar and 15 °C.
    pub fn fig11_staircase(dwell_s: f64) -> Self {
        let up = [0.0, 25.0, 50.0, 100.0, 150.0, 200.0, 250.0];
        let down = [200.0, 150.0, 100.0, 50.0, 25.0, 0.0];
        let levels: Vec<f64> = up.iter().chain(down.iter()).copied().collect();
        let flow = Schedule::staircase(&levels, dwell_s);
        let duration = flow.duration().get();
        Scenario {
            flow_cm_s: flow,
            pressure_bar: Schedule::constant(1.0),
            temperature_c: Schedule::constant(15.0),
            duration_s: duration,
        }
    }

    /// The §5 pressure robustness test: 0→3 bar sweep with 7 bar peaks at
    /// constant flow.
    pub fn pressure_torture(flow_cm_s: f64) -> Self {
        let pressure = Schedule::new()
            .then_hold(1.0, 10.0)
            .then_ramp(3.0, 20.0)
            .then_hold(3.0, 10.0)
            .then_step(7.0, 2.0) // peak
            .then_step(3.0, 10.0)
            .then_step(7.0, 2.0) // second peak
            .then_ramp(0.5, 10.0)
            .then_hold(0.5, 6.0);
        let duration = pressure.duration().get();
        Scenario {
            flow_cm_s: Schedule::constant(flow_cm_s),
            pressure_bar: pressure,
            temperature_c: Schedule::constant(15.0),
            duration_s: duration,
        }
    }

    /// A fluid-temperature ramp at constant flow (experiment E12).
    ///
    /// Runs at 2 bar so the outgassing onset (≈48 °C at 2 bar) stays above
    /// the wire temperature even at the warm end — isolating the *thermal
    /// compensation* question from the bubble failure mode (which E5 covers).
    pub fn temperature_ramp(flow_cm_s: f64, from_c: f64, to_c: f64, duration_s: f64) -> Self {
        Scenario {
            flow_cm_s: Schedule::constant(flow_cm_s),
            pressure_bar: Schedule::constant(2.0),
            temperature_c: Schedule::new()
                .then_hold(from_c, duration_s * 0.2)
                .then_ramp(to_c, duration_s * 0.6)
                .then_hold(to_c, duration_s * 0.2),
            duration_s,
        }
    }

    /// One diurnal demand "day" ([`Schedule::diurnal`]) at 1 bar and
    /// 15 °C: overnight minimum `min_cm_s`, morning and evening peaks at
    /// `peak_cm_s`, compressed into `day_s` seconds of simulated time.
    pub fn diurnal_demand(min_cm_s: f64, peak_cm_s: f64, day_s: f64) -> Self {
        Scenario {
            flow_cm_s: Schedule::diurnal(min_cm_s, peak_cm_s, day_s),
            pressure_bar: Schedule::constant(1.0),
            temperature_c: Schedule::constant(15.0),
            duration_s: day_s,
        }
    }

    /// Constant flow under a parameterized pressure-transient profile
    /// ([`Schedule::pressure_transients`]): `floor_bar` → `working_bar`
    /// with `peaks` spikes to `peak_bar`. The §5 robustness sweep
    /// ([`Scenario::pressure_torture`]) is the 0.5–3 bar / 7 bar-peak
    /// member of this family.
    pub fn pressure_transients(
        flow_cm_s: f64,
        floor_bar: f64,
        working_bar: f64,
        peak_bar: f64,
        peaks: usize,
        dwell_s: f64,
    ) -> Self {
        let pressure =
            Schedule::pressure_transients(floor_bar, working_bar, peak_bar, peaks, dwell_s);
        let duration = pressure.duration().get();
        Scenario {
            flow_cm_s: Schedule::constant(flow_cm_s),
            pressure_bar: pressure,
            temperature_c: Schedule::constant(15.0),
            duration_s: duration,
        }
    }

    /// A seasonal water-temperature sweep ([`Schedule::seasonal`]) at
    /// constant flow and 2 bar (the outgassing onset stays above the wire
    /// temperature across the whole sweep, as in
    /// [`Scenario::temperature_ramp`]).
    pub fn seasonal_sweep(flow_cm_s: f64, winter_c: f64, summer_c: f64, year_s: f64) -> Self {
        Scenario {
            flow_cm_s: Schedule::constant(flow_cm_s),
            pressure_bar: Schedule::constant(2.0),
            temperature_c: Schedule::seasonal(winter_c, summer_c, year_s),
            duration_s: year_s,
        }
    }

    /// The same scenario with the flow schedule scaled by `factor`
    /// (pressure, temperature and duration untouched). See
    /// [`Schedule::scaled`].
    #[must_use]
    pub fn with_flow_scaled(&self, factor: f64) -> Self {
        Scenario {
            flow_cm_s: self.flow_cm_s.scaled(factor),
            ..self.clone()
        }
    }

    /// A bidirectional flow exercise (experiment E4).
    pub fn direction_sweep(magnitude_cm_s: f64, dwell_s: f64) -> Self {
        let flow = Schedule::staircase(
            &[
                magnitude_cm_s,
                0.0,
                -magnitude_cm_s,
                0.0,
                magnitude_cm_s,
                -magnitude_cm_s,
            ],
            dwell_s,
        );
        let duration = flow.duration().get();
        Scenario {
            flow_cm_s: flow,
            pressure_bar: Schedule::constant(1.0),
            temperature_c: Schedule::constant(15.0),
            duration_s: duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_holds_forever() {
        let s = Schedule::constant(3.0);
        assert_eq!(s.value_at(0.0), 3.0);
        assert_eq!(s.value_at(1e9), 3.0);
    }

    #[test]
    fn ramp_interpolates() {
        let s = Schedule::new().then_hold(1.0, 10.0).then_ramp(3.0, 10.0);
        assert_eq!(s.value_at(5.0), 1.0);
        assert!((s.value_at(15.0) - 2.0).abs() < 1e-12);
        assert_eq!(s.value_at(25.0), 3.0);
    }

    #[test]
    fn staircase_levels() {
        let s = Schedule::staircase(&[0.0, 10.0, 20.0], 5.0);
        assert_eq!(s.value_at(2.0), 0.0);
        assert_eq!(s.value_at(7.0), 10.0);
        assert_eq!(s.value_at(12.0), 20.0);
        assert_eq!(s.duration().get(), 15.0);
    }

    #[test]
    fn negative_time_clamps_to_start() {
        let s = Schedule::staircase(&[5.0, 10.0], 1.0);
        assert_eq!(s.value_at(-3.0), 5.0);
    }

    #[test]
    fn constant_then_hold_becomes_reachable() {
        let s = Schedule::constant(1.0).then_hold(2.0, 5.0);
        // The infinite constant segment is truncated by the builder.
        assert_eq!(s.value_at(0.0), 2.0);
    }

    #[test]
    fn fig11_covers_full_scale() {
        let sc = Scenario::fig11_staircase(10.0);
        let mut max = 0.0f64;
        let mut t = 0.0;
        while t < sc.duration_s {
            max = max.max(sc.flow_cm_s.value_at(t));
            t += 1.0;
        }
        assert_eq!(max, 250.0);
        assert_eq!(sc.duration_s, 130.0);
    }

    #[test]
    fn pressure_torture_peaks_at_7_bar() {
        let sc = Scenario::pressure_torture(100.0);
        let mut max = 0.0f64;
        let mut t = 0.0;
        while t < sc.duration_s {
            max = max.max(sc.pressure_bar.value_at(t));
            t += 0.5;
        }
        assert_eq!(max, 7.0);
    }

    #[test]
    fn direction_sweep_goes_negative() {
        let sc = Scenario::direction_sweep(80.0, 5.0);
        let mut min = f64::INFINITY;
        let mut t = 0.0;
        while t < sc.duration_s {
            min = min.min(sc.flow_cm_s.value_at(t));
            t += 0.5;
        }
        assert_eq!(min, -80.0);
    }

    #[test]
    fn temperature_ramp_reaches_target() {
        let sc = Scenario::temperature_ramp(100.0, 15.0, 30.0, 100.0);
        assert_eq!(sc.temperature_c.value_at(5.0), 15.0);
        assert_eq!(sc.temperature_c.value_at(95.0), 30.0);
    }

    #[test]
    fn diurnal_hits_both_peaks_and_the_overnight_floor() {
        let day = Schedule::diurnal(20.0, 220.0, 240.0);
        assert_eq!(day.duration().get(), 240.0);
        assert_eq!(day.value_at(0.05 * 240.0), 20.0); // overnight
        assert_eq!(day.value_at(0.27 * 240.0), 220.0); // morning peak
        assert_eq!(day.value_at(0.50 * 240.0), 120.0); // midday plateau
        assert_eq!(day.value_at(0.75 * 240.0), 220.0); // evening peak
                                                       // back to the floor
        assert_eq!(day.value_at(0.97 * 240.0), 20.0);
        // The whole curve stays inside [min, peak].
        let mut t = 0.0;
        while t < 240.0 {
            let v = day.value_at(t);
            assert!((20.0..=220.0).contains(&v), "v={v} at t={t}");
            t += 0.25;
        }
    }

    #[test]
    fn pressure_transients_count_their_peaks() {
        let sc = Scenario::pressure_transients(100.0, 0.0, 3.0, 7.0, 3, 4.0);
        // Count rising crossings of 6 bar: one per commanded spike.
        let (mut peaks, mut above) = (0usize, false);
        let mut t = 0.0;
        while t < sc.duration_s {
            let p = sc.pressure_bar.value_at(t);
            assert!((0.0..=7.0).contains(&p), "p={p} at t={t}");
            if p > 6.0 && !above {
                peaks += 1;
            }
            above = p > 6.0;
            t += 0.05;
        }
        assert_eq!(peaks, 3);
        assert_eq!(sc.pressure_bar.value_at(sc.duration_s), 0.0);
    }

    #[test]
    fn seasonal_sweep_spans_winter_to_summer() {
        let sc = Scenario::seasonal_sweep(100.0, 4.0, 28.0, 200.0);
        assert_eq!(sc.temperature_c.value_at(10.0), 4.0); // winter hold
        assert_eq!(sc.temperature_c.value_at(110.0), 28.0); // summer hold
        assert!((sc.temperature_c.value_at(199.9) - 4.0).abs() < 0.05); // ~winter again
        assert!((sc.temperature_c.value_at(60.0) - 16.0).abs() < 0.5); // mid-ramp
    }
}
