//! Deterministic structured observability for campaign runs.
//!
//! The rig-side half of the observability layer (`hotwire_core::obs` is the
//! firmware-side half): a bounded per-run [`EventLog`] the meter emits
//! [`ObsEvent`]s into, per-run [`Counters`] and fixed-bucket [`Histogram`]s
//! collected by the runner's hot loop, campaign-wide merging into an
//! [`ObsSnapshot`], and a process-wide per-experiment registry that
//! `repro --json` drains into its `"obs"` section.
//!
//! # Determinism contract
//!
//! Everything except wall-clock profiling is **jobs-invariant**:
//!
//! * Per-run data ([`RunObs`]) is produced single-threaded inside the run,
//!   a pure function of the [`RunSpec`](crate::campaign::RunSpec).
//! * Campaign-wide merging ([`merge_outcomes`]) folds runs in spec order —
//!   the order [`Campaign::try_run`](crate::Campaign::try_run) returns
//!   outcomes, which [`crate::exec::parallel_map_indexed`] guarantees is
//!   index order at any job count.
//! * The process-wide registry only accumulates *commutative* counter and
//!   histogram additions, so even the experiment-level fan-out (which runs
//!   campaigns on worker threads) cannot reorder anything observable.
//!
//! Wall-clock fields ([`ScopeObs::wall_s`], the derived samples/s rates)
//! are profiling output and explicitly **excluded** from the bit-identity
//! guarantee.

use crate::campaign::RunOutcome;
use hotwire_core::obs::{CalSlot, EventKind, ObsEvent, Observer};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default bound on a run's event log. Generously above any observed run
/// (a fault campaign emits tens of events); the bound exists so a
/// pathological run degrades to counted drops instead of unbounded memory.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Process-wide default for [`ObsConfig::enabled`]; the knob behind
/// `repro --no-obs`, mirroring [`exec::set_default_jobs`].
///
/// [`exec::set_default_jobs`]: crate::exec::set_default_jobs
static DEFAULT_ENABLED: AtomicBool = AtomicBool::new(true);

/// Sets whether freshly built [`RunSpec`](crate::campaign::RunSpec)s
/// observe by default. Specs that set [`ObsConfig`] explicitly are
/// unaffected. Exists to make the instrumentation's cost measurable
/// (`repro --fast all` vs `repro --fast --no-obs all`); observation never
/// changes run output either way.
pub fn set_default_enabled(enabled: bool) {
    DEFAULT_ENABLED.store(enabled, Ordering::Relaxed);
}

/// The process-wide default for [`ObsConfig::enabled`] (`true` unless
/// [`set_default_enabled`] turned it off).
pub fn default_enabled() -> bool {
    DEFAULT_ENABLED.load(Ordering::Relaxed)
}

/// Observability knobs carried by a [`RunSpec`](crate::campaign::RunSpec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Install an [`EventLog`] and collect run counters/histograms.
    pub enabled: bool,
    /// Event-log bound (events beyond it are dropped and counted).
    pub event_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: default_enabled(),
            event_capacity: DEFAULT_EVENT_CAPACITY,
        }
    }
}

/// A bounded, allocation-free-after-construction event sink — the
/// [`Observer`] the campaign layer installs into each run's meter.
#[derive(Debug)]
pub struct EventLog {
    events: Vec<ObsEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// A log bounded at `capacity` events (clamped to ≥ 1), with the
    /// backing storage pre-allocated so recording never reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventLog {
            events: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Events recorded so far (oldest first).
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl Observer for EventLog {
    fn record(&mut self, event: ObsEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    fn drain(&mut self) -> Vec<ObsEvent> {
        std::mem::take(&mut self.events)
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A fixed-bucket histogram over `i64` samples.
///
/// The bucket layout (`lo`, `bucket_width`, bucket count) is fixed at
/// construction; merging asserts layout equality, so canonically
/// constructed histograms ([`pi_output_histogram`], [`latency_histogram`])
/// always merge. All fields are integers — accumulation is exact and
/// order-independent, which is what makes campaign-wide merges
/// jobs-invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive lower edge of the first bucket.
    pub lo: i64,
    /// Width of every bucket (≥ 1).
    pub bucket_width: i64,
    /// Per-bucket counts.
    pub counts: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above the last bucket's upper edge.
    pub overflow: u64,
    /// Total samples recorded (including under/overflow).
    pub total: u64,
    /// Exact sum of all samples (for the mean; `i128` cannot overflow at
    /// any realistic campaign size).
    pub sum: i128,
}

impl Histogram {
    /// A histogram of `bins` equal buckets covering `[lo, hi)`. The width
    /// is rounded up so the range is always covered; `bins` and the range
    /// are clamped to ≥ 1.
    pub fn new(lo: i64, hi: i64, bins: usize) -> Self {
        let bins = bins.max(1);
        let span = (hi - lo).max(1);
        let bucket_width = (span + bins as i64 - 1) / bins as i64;
        Histogram {
            lo,
            bucket_width: bucket_width.max(1),
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: i64) {
        self.total += 1;
        self.sum += value as i128;
        if value < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((value - self.lo) / self.bucket_width) as usize;
        match self.counts.get_mut(idx) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
    }

    /// Mean of all recorded samples (`NaN` when empty, matching the
    /// metrics crate's empty⇒NaN convention).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        self.sum as f64 / self.total as f64
    }

    /// Adds another histogram's contents into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ — merging histograms of
    /// different shapes is a programming error, not a data condition.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            (self.lo, self.bucket_width, self.counts.len()),
            (other.lo, other.bucket_width, other.counts.len()),
            "histogram bucket layouts differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// Canonical histogram for the PI output (supply-DAC code) distribution:
/// 64 buckets over the full DAC range `[0, 4096)`.
pub fn pi_output_histogram() -> Histogram {
    Histogram::new(0, 4096, 64)
}

/// Canonical histogram for ADC-to-measurement latency in modulator ticks:
/// 64 buckets over `[0, 2048)`. Covers every supported decimation up to
/// 2048; a (legal but unused) decimation above that lands in `overflow`,
/// which is still counted and still deterministic.
pub fn latency_histogram() -> Histogram {
    Histogram::new(0, 2048, 64)
}

/// Flat event/progress counters for one run, campaign, or scope. Every
/// field is a `u64` add — merging is commutative and exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Modulator (ΣΔ) steps executed.
    pub modulator_steps: u64,
    /// Control ticks executed (measurements produced).
    pub control_ticks: u64,
    /// Trace samples recorded.
    pub samples_recorded: u64,
    /// Events captured in event logs.
    pub events_recorded: u64,
    /// Events dropped at event-log capacity.
    pub events_dropped: u64,
    /// PI saturation-window entries.
    pub saturation_enters: u64,
    /// PI saturation-window exits.
    pub saturation_exits: u64,
    /// Health-supervisor state transitions.
    pub health_transitions: u64,
    /// ISIF watchdog expiries.
    pub watchdog_expiries: u64,
    /// Faults engaged by the injector.
    pub faults_activated: u64,
    /// Windowed faults reverted by the injector.
    pub faults_cleared: u64,
    /// Successful calibration reloads (either slot).
    pub calibration_reloads: u64,
    /// Calibration reloads served from the redundant slot.
    pub calibration_fallbacks: u64,
    /// Calibration reloads with every copy corrupt.
    pub calibration_failures: u64,
    /// Telemetry frames dropped on CRC mismatch.
    pub uart_frame_errors: u64,
    /// Maintenance-policy drift re-zeros.
    pub calibration_re_zeros: u64,
    /// Maintenance-policy in-RAM calibration refits.
    pub calibration_refits: u64,
    /// Maintenance-policy calibration persists to EEPROM.
    pub calibration_persists: u64,
}

impl Counters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (mine, theirs) in self.as_pairs_mut().into_iter().zip(other.as_pairs()) {
            *mine.1 += theirs.1;
        }
    }

    /// Tallies a batch of events into the per-kind counters (the event
    /// *log* is kept separately; this is the aggregate view).
    pub fn absorb_events(&mut self, events: &[ObsEvent]) {
        self.events_recorded += events.len() as u64;
        for event in events {
            match event.kind {
                EventKind::PiSaturationEnter => self.saturation_enters += 1,
                EventKind::PiSaturationExit => self.saturation_exits += 1,
                EventKind::HealthTransition { .. } => self.health_transitions += 1,
                EventKind::WatchdogExpired => self.watchdog_expiries += 1,
                EventKind::FaultActivated { .. } => self.faults_activated += 1,
                EventKind::FaultCleared { .. } => self.faults_cleared += 1,
                EventKind::CalibrationReloaded { slot } => {
                    self.calibration_reloads += 1;
                    if slot == CalSlot::Redundant {
                        self.calibration_fallbacks += 1;
                    }
                }
                EventKind::CalibrationReloadFailed => self.calibration_failures += 1,
                EventKind::UartFrameError => self.uart_frame_errors += 1,
                EventKind::CalibrationReZeroed => self.calibration_re_zeros += 1,
                EventKind::CalibrationRefit => self.calibration_refits += 1,
                EventKind::CalibrationPersisted => self.calibration_persists += 1,
            }
        }
    }

    /// The counters as stable `(name, value)` pairs, in declaration order —
    /// the single source of truth for JSON rendering and merging.
    pub fn as_pairs(&self) -> [(&'static str, u64); 18] {
        [
            ("modulator_steps", self.modulator_steps),
            ("control_ticks", self.control_ticks),
            ("samples_recorded", self.samples_recorded),
            ("events_recorded", self.events_recorded),
            ("events_dropped", self.events_dropped),
            ("saturation_enters", self.saturation_enters),
            ("saturation_exits", self.saturation_exits),
            ("health_transitions", self.health_transitions),
            ("watchdog_expiries", self.watchdog_expiries),
            ("faults_activated", self.faults_activated),
            ("faults_cleared", self.faults_cleared),
            ("calibration_reloads", self.calibration_reloads),
            ("calibration_fallbacks", self.calibration_fallbacks),
            ("calibration_failures", self.calibration_failures),
            ("uart_frame_errors", self.uart_frame_errors),
            ("calibration_re_zeros", self.calibration_re_zeros),
            ("calibration_refits", self.calibration_refits),
            ("calibration_persists", self.calibration_persists),
        ]
    }

    fn as_pairs_mut(&mut self) -> [(&'static str, &mut u64); 18] {
        [
            ("modulator_steps", &mut self.modulator_steps),
            ("control_ticks", &mut self.control_ticks),
            ("samples_recorded", &mut self.samples_recorded),
            ("events_recorded", &mut self.events_recorded),
            ("events_dropped", &mut self.events_dropped),
            ("saturation_enters", &mut self.saturation_enters),
            ("saturation_exits", &mut self.saturation_exits),
            ("health_transitions", &mut self.health_transitions),
            ("watchdog_expiries", &mut self.watchdog_expiries),
            ("faults_activated", &mut self.faults_activated),
            ("faults_cleared", &mut self.faults_cleared),
            ("calibration_reloads", &mut self.calibration_reloads),
            ("calibration_fallbacks", &mut self.calibration_fallbacks),
            ("calibration_failures", &mut self.calibration_failures),
            ("uart_frame_errors", &mut self.uart_frame_errors),
            ("calibration_re_zeros", &mut self.calibration_re_zeros),
            ("calibration_refits", &mut self.calibration_refits),
            ("calibration_persists", &mut self.calibration_persists),
        ]
    }
}

/// Observability output of a single run: hot-loop counters and histograms
/// from the runner, plus the drained event log.
#[derive(Debug, Clone, PartialEq)]
pub struct RunObs {
    /// Flat counters for this run.
    pub counters: Counters,
    /// Distribution of the PI output (supply-DAC code) at control ticks.
    pub pi_output: Histogram,
    /// ADC-to-measurement latency per control tick, in modulator ticks.
    pub latency_ticks: Histogram,
    /// The run's event log, oldest first.
    pub events: Vec<ObsEvent>,
}

impl Default for RunObs {
    fn default() -> Self {
        RunObs {
            counters: Counters::default(),
            pi_output: pi_output_histogram(),
            latency_ticks: latency_histogram(),
            events: Vec::new(),
        }
    }
}

/// Campaign-wide merged observability: every run's counters and histograms
/// folded in spec order, plus the concatenated labelled event logs.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Runs that carried observability data.
    pub runs: u64,
    /// Merged counters across those runs.
    pub counters: Counters,
    /// Merged PI-output distribution.
    pub pi_output: Histogram,
    /// Merged latency distribution.
    pub latency_ticks: Histogram,
    /// Every run's events, labelled with the run's spec label, in spec
    /// order then event order.
    pub events: Vec<(String, ObsEvent)>,
}

impl Default for ObsSnapshot {
    fn default() -> Self {
        ObsSnapshot {
            runs: 0,
            counters: Counters::default(),
            pi_output: pi_output_histogram(),
            latency_ticks: latency_histogram(),
            events: Vec::new(),
        }
    }
}

impl ObsSnapshot {
    /// Folds one run's observability data in (no-op for runs that carried
    /// none).
    pub fn absorb_run(&mut self, label: &str, obs: &RunObs) {
        self.runs += 1;
        self.counters.merge(&obs.counters);
        self.pi_output.merge(&obs.pi_output);
        self.latency_ticks.merge(&obs.latency_ticks);
        self.events
            .extend(obs.events.iter().map(|&e| (label.to_string(), e)));
    }

    /// Folds another snapshot in (its runs after this one's).
    pub fn merge(&mut self, other: &ObsSnapshot) {
        self.runs += other.runs;
        self.counters.merge(&other.counters);
        self.pi_output.merge(&other.pi_output);
        self.latency_ticks.merge(&other.latency_ticks);
        self.events.extend(other.events.iter().cloned());
    }
}

/// Merges the observability data of a batch of outcomes, in the order
/// given — pass outcomes in spec order (as [`Campaign::run`] and
/// [`Campaign::try_run`] return them) and the result is bit-identical at
/// any job count.
///
/// [`Campaign::run`]: crate::Campaign::run
/// [`Campaign::try_run`]: crate::Campaign::try_run
pub fn merge_outcomes(outcomes: &[RunOutcome]) -> ObsSnapshot {
    let mut snapshot = ObsSnapshot::default();
    for outcome in outcomes {
        if let Some(obs) = &outcome.trace.obs {
            snapshot.absorb_run(&outcome.label, obs);
        }
    }
    snapshot
}

/// Per-experiment aggregate in the process-wide registry: merged campaign
/// observability plus wall-clock profiling.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeObs {
    /// Campaigns recorded under this scope.
    pub campaigns: u64,
    /// Runs across those campaigns.
    pub runs: u64,
    /// Merged counters.
    pub counters: Counters,
    /// Merged PI-output distribution.
    pub pi_output: Histogram,
    /// Merged latency distribution.
    pub latency_ticks: Histogram,
    /// Total campaign wall-clock under this scope, seconds. Profiling
    /// only — excluded from the determinism guarantee.
    pub wall_s: f64,
}

impl Default for ScopeObs {
    fn default() -> Self {
        ScopeObs {
            campaigns: 0,
            runs: 0,
            counters: Counters::default(),
            pi_output: pi_output_histogram(),
            latency_ticks: latency_histogram(),
            wall_s: 0.0,
        }
    }
}

impl ScopeObs {
    /// Simulation throughput: modulator steps per wall-clock second
    /// (`NaN` until any wall time is recorded). The repo's headline perf
    /// number — `BENCH_obs.json` commits it per experiment.
    pub fn samples_per_s(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return f64::NAN;
        }
        self.counters.modulator_steps as f64 / self.wall_s
    }
}

thread_local! {
    /// The active experiment scope on this thread, if any.
    static SCOPE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// The process-wide per-scope registry. `BTreeMap` so every iteration
/// (JSON rendering, test comparison) is in deterministic label order.
fn registry() -> &'static Mutex<BTreeMap<String, ScopeObs>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, ScopeObs>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// RAII guard restoring the previous scope (panic-safe: a panicking
/// experiment cannot leak its label onto the worker thread).
struct ScopeGuard {
    previous: Option<String>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| *s.borrow_mut() = self.previous.take());
    }
}

/// Runs `f` with `label` as this thread's experiment scope: campaigns
/// executed inside (on this thread) record their observability under that
/// label. Scopes nest; the previous scope is restored on exit, panic
/// included.
///
/// The scope is thread-local: when work is fanned out to worker threads,
/// set the scope *inside* the fanned closure (as `repro` does), not around
/// the fan-out call.
pub fn scoped<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let previous = SCOPE.with(|s| s.borrow_mut().replace(label.to_string()));
    let _guard = ScopeGuard { previous };
    f()
}

/// The experiment scope active on this thread, if any.
pub fn current_scope() -> Option<String> {
    SCOPE.with(|s| s.borrow().clone())
}

/// Records one campaign's merged observability (plus its wall time) under
/// this thread's active scope. No scope → no-op, so library users and unit
/// tests that never call [`scoped`] leave the registry untouched.
///
/// Only commutative adds reach the registry — counters, histogram buckets,
/// wall-time sums — so the registry contents (wall time aside) are
/// independent of which thread recorded first.
pub fn record_campaign(snapshot: &ObsSnapshot, wall_s: f64) {
    let Some(scope) = current_scope() else { return };
    if snapshot.runs == 0 && wall_s == 0.0 {
        return;
    }
    let mut reg = registry().lock().expect("obs registry poisoned");
    let entry = reg.entry(scope).or_default();
    entry.campaigns += 1;
    entry.runs += snapshot.runs;
    entry.counters.merge(&snapshot.counters);
    entry.pi_output.merge(&snapshot.pi_output);
    entry.latency_ticks.merge(&snapshot.latency_ticks);
    entry.wall_s += wall_s;
}

/// Drains and returns the whole registry (label-ordered). `repro` calls
/// this once after all experiments finish.
pub fn take_registry() -> BTreeMap<String, ScopeObs> {
    std::mem::take(&mut *registry().lock().expect("obs registry poisoned"))
}

/// A copy of the current registry contents without draining them.
pub fn registry_snapshot() -> BTreeMap<String, ScopeObs> {
    registry().lock().expect("obs registry poisoned").clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_core::HealthState;

    fn event(tick: u64, kind: EventKind) -> ObsEvent {
        ObsEvent { tick, kind }
    }

    #[test]
    fn event_log_bounds_and_counts_drops() {
        let mut log = EventLog::with_capacity(2);
        for t in 0..5 {
            log.record(event(t, EventKind::WatchdogExpired));
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].tick, 0);
        assert!(log.events().is_empty());
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0, 4096, 64); // width 64
        h.record(0);
        h.record(63);
        h.record(64);
        h.record(4095);
        h.record(-1);
        h.record(4096);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[63], 1);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total, 6);
        // Empty histogram has no mean.
        assert!(Histogram::new(0, 10, 2).mean().is_nan());
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = pi_output_histogram();
        let mut b = pi_output_histogram();
        for v in [10, 100, 1000] {
            a.record(v);
        }
        for v in [10, 2000, 4000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut serial = pi_output_histogram();
        for v in [10, 100, 1000, 10, 2000, 4000] {
            serial.record(v);
        }
        assert_eq!(merged, serial);
    }

    #[test]
    #[should_panic(expected = "bucket layouts differ")]
    fn histogram_merge_rejects_layout_mismatch() {
        let mut a = pi_output_histogram();
        a.merge(&latency_histogram());
    }

    #[test]
    fn counters_absorb_events_by_kind() {
        let mut c = Counters::default();
        c.absorb_events(&[
            event(1, EventKind::PiSaturationEnter),
            event(2, EventKind::PiSaturationExit),
            event(
                3,
                EventKind::HealthTransition {
                    from: HealthState::Healthy,
                    to: HealthState::Degraded,
                },
            ),
            event(4, EventKind::WatchdogExpired),
            event(5, EventKind::FaultActivated { fault: "adc_stuck" }),
            event(6, EventKind::FaultCleared { fault: "adc_stuck" }),
            event(
                7,
                EventKind::CalibrationReloaded {
                    slot: CalSlot::Redundant,
                },
            ),
            event(
                8,
                EventKind::CalibrationReloaded {
                    slot: CalSlot::Primary,
                },
            ),
            event(9, EventKind::CalibrationReloadFailed),
            event(10, EventKind::UartFrameError),
        ]);
        assert_eq!(c.events_recorded, 10);
        assert_eq!(c.saturation_enters, 1);
        assert_eq!(c.saturation_exits, 1);
        assert_eq!(c.health_transitions, 1);
        assert_eq!(c.watchdog_expiries, 1);
        assert_eq!(c.faults_activated, 1);
        assert_eq!(c.faults_cleared, 1);
        assert_eq!(c.calibration_reloads, 2);
        assert_eq!(c.calibration_fallbacks, 1);
        assert_eq!(c.calibration_failures, 1);
        assert_eq!(c.uart_frame_errors, 1);
    }

    #[test]
    fn counters_merge_matches_pairs() {
        let mut a = Counters {
            modulator_steps: 5,
            uart_frame_errors: 2,
            ..Counters::default()
        };
        let b = Counters {
            modulator_steps: 7,
            control_ticks: 3,
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(a.modulator_steps, 12);
        assert_eq!(a.control_ticks, 3);
        assert_eq!(a.uart_frame_errors, 2);
        // The pairs view names every field exactly once.
        let names: Vec<&str> = a.as_pairs().iter().map(|p| p.0).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn snapshot_absorbs_runs_in_order() {
        let mut run_a = RunObs::default();
        run_a.counters.control_ticks = 10;
        run_a.pi_output.record(100);
        run_a.events.push(event(1, EventKind::PiSaturationEnter));
        let mut run_b = RunObs::default();
        run_b.counters.control_ticks = 20;
        run_b.events.push(event(2, EventKind::PiSaturationExit));

        let mut snap = ObsSnapshot::default();
        snap.absorb_run("a", &run_a);
        snap.absorb_run("b", &run_b);
        assert_eq!(snap.runs, 2);
        assert_eq!(snap.counters.control_ticks, 30);
        assert_eq!(snap.pi_output.total, 1);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].0, "a");
        assert_eq!(snap.events[1].0, "b");
    }

    #[test]
    fn scoped_nests_and_restores() {
        assert_eq!(current_scope(), None);
        scoped("outer", || {
            assert_eq!(current_scope().as_deref(), Some("outer"));
            scoped("inner", || {
                assert_eq!(current_scope().as_deref(), Some("inner"));
            });
            assert_eq!(current_scope().as_deref(), Some("outer"));
        });
        assert_eq!(current_scope(), None);
    }

    #[test]
    fn scope_restored_after_panic() {
        let result = std::panic::catch_unwind(|| {
            scoped("doomed-scope-test", || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(current_scope(), None);
    }

    #[test]
    fn record_without_scope_is_a_no_op() {
        let snap = ObsSnapshot {
            runs: 1,
            counters: Counters {
                control_ticks: 99,
                ..Counters::default()
            },
            ..ObsSnapshot::default()
        };
        record_campaign(&snap, 1.0);
        // Nothing landed anywhere: no scope label existed to file it under.
        // (Scoped recording is covered by the integration tests; checking
        // total registry emptiness here would race other tests.)
        assert!(!registry_snapshot().contains_key(""));
    }

    #[test]
    fn scoped_recording_lands_in_the_registry() {
        // A label unique to this test: the registry is process-global and
        // cargo test runs tests concurrently.
        let label = "obs-unit-test-scope-7f3a";
        let snap = ObsSnapshot {
            runs: 2,
            counters: Counters {
                modulator_steps: 1000,
                ..Counters::default()
            },
            ..ObsSnapshot::default()
        };
        scoped(label, || {
            record_campaign(&snap, 0.5);
            record_campaign(&snap, 0.25);
        });
        let reg = registry_snapshot();
        let scope = reg.get(label).expect("scope recorded");
        assert_eq!(scope.campaigns, 2);
        assert_eq!(scope.runs, 4);
        assert_eq!(scope.counters.modulator_steps, 2000);
        assert!((scope.wall_s - 0.75).abs() < 1e-12);
        assert!((scope.samples_per_s() - 2000.0 / 0.75).abs() < 1e-6);
    }
}
