//! Declarative run specifications and the deterministic campaign executor.
//!
//! Every experiment in the benchmark suite is some number of independent
//! co-simulation runs: build a meter, calibrate it, drive it through a
//! scenario, reduce the trace. This module makes that shape explicit —
//! a [`RunSpec`] *describes* one run, a [`Campaign`] *executes* batches of
//! them across worker threads — so experiments declare what to run instead
//! of hand-rolling sweep loops.
//!
//! # Determinism
//!
//! A run's result is a pure function of its spec: the meter is seeded by
//! `meter_seed`, the line by `line_seed`, and each run is single-threaded
//! end to end (see the threading contract in `hotwire_core`). The executor
//! ([`exec::parallel_map_indexed`]) only changes *when* runs happen, never
//! *what* they compute, and returns outcomes in spec order — so a campaign's
//! output is bit-for-bit identical for any job count, including serial.
//!
//! ```no_run
//! use hotwire_rig::{Campaign, RunSpec, Scenario};
//! use hotwire_core::FlowMeterConfig;
//!
//! let specs: Vec<RunSpec> = (0..4)
//!     .map(|i| {
//!         RunSpec::new(
//!             format!("steady-{i}"),
//!             FlowMeterConfig::test_profile(),
//!             Scenario::steady(50.0 + 50.0 * i as f64, 4.0),
//!             hotwire_rig::campaign::derive_seed(0xC0FFEE, i),
//!         )
//!         .with_windows((2.0, 2.0))
//!     })
//!     .collect();
//! let outcomes = Campaign::new().run(&specs)?;
//! for o in &outcomes {
//!     println!("{}: {:.1} ± {:.2} cm/s", o.label, o.settled_mean(), o.settled_std());
//! }
//! # Ok::<(), hotwire_core::CoreError>(())
//! ```

use crate::exec;
use crate::fault::FaultSchedule;
use crate::line::WaterLine;
use crate::maintain::{Maintenance, MaintenanceCounters, MaintenanceEngine};
use crate::metrics::Welford;
use crate::modality::{AnyMeter, Modality, ReferenceMeter};
use crate::obs::{self, EventLog, ObsConfig};
use crate::promag::Promag50;
use crate::record::{PolicyRecorder, RecordPolicy, Recorder, ReductionPlan, RunReductions};
use crate::runner::{LineRunner, RunTail, Trace};
use crate::scenario::Scenario;
use hotwire_core::calibration::CalPoint;
use hotwire_core::config::AfeTier;
use hotwire_core::{CoreError, FlowMeter, FlowMeterConfig, HeatPulseMeter, Meter};
use hotwire_physics::{MafParams, SensorEnvironment};
use hotwire_units::{Celsius, MetersPerSecond, Seconds, ThermalConductance};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The five-point field-calibration grid used throughout the paper's §5
/// evaluation (cm/s).
pub const PAPER_SETPOINTS_CM_S: [f64; 5] = [15.0, 50.0, 100.0, 160.0, 220.0];

/// Derives a statistically independent seed for item `index` of a batch
/// from a campaign-level `base` seed (SplitMix64 finalizer).
///
/// Neighbouring indices produce uncorrelated streams, unlike `base + index`
/// which leaves low-bit structure in some generators.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Recipe for the paper's field-calibration procedure: visit each setpoint
/// on a steady line against the Promag reference, average conductance and
/// reference velocity, fit King's law.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldCalibration {
    /// Steady setpoints to visit, cm/s.
    pub setpoints_cm_s: Vec<f64>,
    /// Settling time before averaging starts at each setpoint, seconds.
    pub settle_s: f64,
    /// Averaging window at each setpoint, seconds.
    pub average_s: f64,
    /// Base seed for the calibration lines (per-setpoint seeds are derived
    /// from it exactly as the historical serial procedure did).
    pub seed: u64,
}

impl FieldCalibration {
    /// The paper's grid ([`PAPER_SETPOINTS_CM_S`]) with the given windows.
    pub fn paper(settle_s: f64, average_s: f64, seed: u64) -> Self {
        FieldCalibration {
            setpoints_cm_s: PAPER_SETPOINTS_CM_S.to_vec(),
            settle_s,
            average_s,
            seed,
        }
    }

    /// Applies this recipe to `meter`: collect the setpoint observations
    /// (up to `jobs` replicas at a time), adopt the converged
    /// fluid-temperature estimate, fit and install King's law. **The**
    /// single field-calibration path — [`build_meter`]'s
    /// [`Calibration::Field`] arm and the deprecated
    /// [`field_calibrate`](crate::runner::field_calibrate) shims both
    /// come through here, so every caller gets bit-identical fits.
    ///
    /// Returns the calibration points used.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Calibration`] if a setpoint records no
    /// settled samples or the fit fails.
    pub fn apply(&self, meter: &mut FlowMeter, jobs: usize) -> Result<Vec<CalPoint>, CoreError> {
        let (points, estimate) = collect_calibration_points(meter, self, jobs)?;
        meter.adopt_fluid_estimate(estimate);
        meter.calibrate(&points)?;
        Ok(points)
    }
}

/// Every reduction window a [`RunSpec`] declares, grouped in one value.
///
/// Historically the spec grew one `with_*` method per window class
/// (settled, extra, series, error) — twelve builder methods deep, they
/// stopped composing once fleets needed to stamp out thousands of
/// per-line specs from one template. `Windows` is that template: build it
/// once, hand it to [`RunSpec::with_windows`] (or a
/// [`FleetSpec`](crate::fleet::FleetSpec)), clone it freely.
///
/// All windows are half-open `[t0, t1)` intervals on the scenario clock.
///
/// ```
/// use hotwire_rig::Windows;
///
/// let w = Windows::settled(2.0, 3.0) // ignore 2 s, measure 3 s
///     .with_extra(1.0, 2.0)          // an extra Welford window
///     .with_err(2.0, f64::INFINITY); // DUT-vs-truth error stats
/// assert_eq!(w.settled_window(), (2.0, 5.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Windows {
    /// Settling time ignored by the settled-window statistics, seconds.
    pub settle_s: f64,
    /// Length of the measurement window after settling, seconds
    /// (`0.0` = to the end of the scenario).
    pub measure_s: f64,
    /// Extra `[t0, t1)` DUT Welford windows reduced during the run (e.g.
    /// per-visit repeatability windows) — read back via
    /// [`RunOutcome::window`].
    pub extra: Vec<(f64, f64)>,
    /// If set, retain the `(t, dut)` series inside this window during the
    /// run (bounded by the window), for rise-time analysis under
    /// [`RecordPolicy::MetricsOnly`].
    pub series: Option<(f64, f64)>,
    /// If set, accumulate DUT-vs-truth error statistics (worst |err|, RMS)
    /// over this window during the run.
    pub err: Option<(f64, f64)>,
}

impl Windows {
    /// No settling, no extra windows: every sample is "settled".
    pub fn none() -> Self {
        Windows::default()
    }

    /// Settled statistics ignoring the first `settle_s` seconds, then
    /// measuring for `measure_s` seconds (`0.0` = to the end).
    pub fn settled(settle_s: f64, measure_s: f64) -> Self {
        Windows {
            settle_s,
            measure_s,
            ..Windows::default()
        }
    }

    /// Adds an extra `[t0, t1)` DUT Welford window (read back via
    /// [`RunOutcome::window`], in insertion order).
    #[must_use]
    pub fn with_extra(mut self, t0: f64, t1: f64) -> Self {
        self.extra.push((t0, t1));
        self
    }

    /// Retains the `(t, dut)` series inside `[t0, t1)` for rise-time
    /// analysis without a stored trace.
    #[must_use]
    pub fn with_series(mut self, t0: f64, t1: f64) -> Self {
        self.series = Some((t0, t1));
        self
    }

    /// Accumulates DUT-vs-truth error statistics over `[t0, t1)`
    /// ([`RunReductions::err_rms`], worst |err|).
    #[must_use]
    pub fn with_err(mut self, t0: f64, t1: f64) -> Self {
        self.err = Some((t0, t1));
        self
    }

    /// The settled window as a half-open `[t0, t1)` interval
    /// (`measure_s == 0.0` ⇒ unbounded).
    pub fn settled_window(&self) -> (f64, f64) {
        let t1 = if self.measure_s > 0.0 {
            self.settle_s + self.measure_s
        } else {
            f64::INFINITY
        };
        (self.settle_s, t1)
    }

    /// The streaming-reduction plan these windows describe.
    pub fn reduction_plan(&self) -> ReductionPlan {
        ReductionPlan {
            settle: self.settled_window(),
            windows: self.extra.clone(),
            series: self.series,
            err: self.err,
        }
    }
}

/// `(settle_s, measure_s)` is the overwhelmingly common case, so it
/// converts directly: `spec.with_windows((2.0, 3.0))`.
impl From<(f64, f64)> for Windows {
    fn from((settle_s, measure_s): (f64, f64)) -> Self {
        Windows::settled(settle_s, measure_s)
    }
}

/// Every per-line instrument knob of a spec, grouped in one value.
///
/// The same consolidation [`Windows`] applied to the reduction windows:
/// the spec had grown one `with_*` builder per knob — modality, AFE
/// tier, observability, faults, and now maintenance — which stopped
/// composing once fleets and multi-modality sweeps needed to stamp the
/// same instrument configuration onto many specs. `LineConfig` is that
/// template: build it once, hand it to [`RunSpec::with_config`] or
/// [`FleetSpec::with_config`](crate::fleet::FleetSpec::with_config),
/// clone it freely. The per-knob spec builders survive as deprecated
/// shims pinned bit-identical to the grouped path.
///
/// ```
/// use hotwire_rig::campaign::LineConfig;
/// use hotwire_rig::{Maintenance, Modality, Policy};
///
/// let cfg = LineConfig::new()
///     .with_modality(Modality::HeatPulse)
///     .with_maintenance(Maintenance::new(Policy::Scheduled { period_s: 3600.0 }))
///     .without_obs();
/// assert_eq!(cfg.modality, Modality::HeatPulse);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LineConfig {
    /// Sensing modality of the device under test ([`Modality::Cta`]
    /// by default).
    pub modality: Modality,
    /// AFE fidelity tier ([`AfeTier::Exact`] by default).
    pub afe_tier: AfeTier,
    /// Maintenance policy governing in-run re-zero / refit / persist
    /// (inactive by default).
    pub maintenance: Maintenance,
    /// Observability configuration (enabled by default). Fleet specs
    /// ignore this knob: fleet lines always run unobserved
    /// ([`RecordPolicy::MetricsOnly`]); their maintenance activity rides
    /// the line summaries instead of event logs.
    pub obs: ObsConfig,
    /// Seeded fault schedule injected during the run (`None` = healthy).
    /// Fleet specs ignore this knob: per-line fault templates live in
    /// [`LineVariation`](crate::fleet::LineVariation).
    pub faults: Option<FaultSchedule>,
}

impl LineConfig {
    /// The default instrument: CTA, exact AFE, no maintenance policy,
    /// observability on, no faults.
    pub fn new() -> Self {
        LineConfig::default()
    }

    /// Selects the sensing modality.
    #[must_use]
    pub fn with_modality(mut self, modality: Modality) -> Self {
        self.modality = modality;
        self
    }

    /// Selects the AFE fidelity tier.
    #[must_use]
    pub fn with_afe_tier(mut self, tier: AfeTier) -> Self {
        self.afe_tier = tier;
        self
    }

    /// Sets the maintenance policy.
    #[must_use]
    pub fn with_maintenance(mut self, maintenance: Maintenance) -> Self {
        self.maintenance = maintenance;
        self
    }

    /// Overrides the observability configuration.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Disables observability.
    #[must_use]
    pub fn without_obs(mut self) -> Self {
        self.obs.enabled = false;
        self
    }

    /// Injects a seeded fault schedule.
    #[must_use]
    pub fn with_faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }
}

impl Default for LineConfig {
    fn default() -> Self {
        LineConfig {
            modality: Modality::Cta,
            afe_tier: AfeTier::Exact,
            maintenance: Maintenance::default(),
            obs: ObsConfig::default(),
            faults: None,
        }
    }
}

/// How a [`RunSpec`]'s meter is calibrated before the scenario starts.
#[derive(Debug, Clone, PartialEq)]
pub enum Calibration {
    /// Keep the factory (design-model) calibration.
    Factory,
    /// Run the field-calibration procedure from scratch.
    Field(FieldCalibration),
    /// Install pre-computed calibration points — the cheap path when many
    /// specs share one calibration (collect once with
    /// [`collect_calibration_points`], fan the points out).
    Points {
        /// The calibration observations to fit.
        points: Vec<CalPoint>,
        /// Converged fluid-temperature estimate to adopt before fitting, so
        /// the temperature-compensation offset learned at calibration time
        /// matches the meter that produced `points`.
        fluid_estimate: Option<Celsius>,
    },
}

/// A declarative description of one co-simulation run.
///
/// Everything a run depends on is in the spec; two equal specs produce
/// bit-for-bit equal outcomes, on any thread, at any job count.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Label carried through to the [`RunOutcome`] (for reports).
    pub label: String,
    /// Sensing modality of the device under test
    /// ([`Modality::Cta`] by default). Non-CTA modalities ignore
    /// [`calibration`](Self::calibration) and
    /// [`auto_zero_s`](Self::auto_zero_s): the heat-pulse meter carries
    /// its own factory calibration, and reference meters need neither.
    pub modality: Modality,
    /// Meter configuration.
    pub config: FlowMeterConfig,
    /// Die parameters.
    pub params: MafParams,
    /// Seed for the meter's component tolerances and noise.
    pub meter_seed: u64,
    /// Calibration applied before the run.
    pub calibration: Calibration,
    /// If set, auto-zero the direction channel in still water for this many
    /// seconds before the scenario starts.
    pub auto_zero_s: Option<f64>,
    /// The line scenario to drive.
    pub scenario: Scenario,
    /// Seeded fault schedule injected during the run (`None` = healthy).
    pub faults: Option<FaultSchedule>,
    /// Seed for the line's turbulence and the reference meters' noise.
    pub line_seed: u64,
    /// Trace recording cadence, seconds per sample.
    pub sample_period_s: f64,
    /// Every reduction window of the run, grouped
    /// ([`with_windows`](Self::with_windows)).
    pub windows: Windows,
    /// Maintenance policy governing in-run re-zero / refit / persist
    /// (inactive by default; see [`with_config`](Self::with_config) and
    /// [`crate::maintain`]).
    pub maintenance: Maintenance,
    /// Observability configuration (on by default; see
    /// [`with_config`](Self::with_config) / [`without_obs`](Self::without_obs)).
    pub obs: ObsConfig,
    /// What the stored trace keeps of the raw samples
    /// ([`RecordPolicy::Full`] by default). Streaming reductions
    /// ([`RunOutcome::reduced`]) are computed under every policy.
    pub record: RecordPolicy,
}

impl RunSpec {
    /// A spec with nominal die parameters, factory calibration, no
    /// auto-zero, a 20 ms sample cadence and no settling window. `seed`
    /// seeds both the meter and the line; use the `with_*` builders to
    /// override any of it.
    pub fn new(
        label: impl Into<String>,
        config: FlowMeterConfig,
        scenario: Scenario,
        seed: u64,
    ) -> Self {
        RunSpec {
            label: label.into(),
            modality: Modality::Cta,
            config,
            params: MafParams::nominal(),
            meter_seed: seed,
            calibration: Calibration::Factory,
            auto_zero_s: None,
            scenario,
            faults: None,
            line_seed: seed,
            sample_period_s: 0.02,
            windows: Windows::default(),
            maintenance: Maintenance::default(),
            obs: ObsConfig::default(),
            record: RecordPolicy::Full,
        }
    }

    /// Sets every per-line instrument knob at once — modality, AFE tier,
    /// maintenance policy, observability, faults — from one grouped
    /// [`LineConfig`] (the [`Windows`] consolidation applied to the
    /// instrument knobs). Knobs not touched on the `LineConfig` are set
    /// to its defaults, exactly as [`with_windows`](Self::with_windows)
    /// replaces every window.
    ///
    /// ```
    /// # use hotwire_rig::{RunSpec, Scenario, Modality};
    /// # use hotwire_rig::campaign::LineConfig;
    /// # use hotwire_core::FlowMeterConfig;
    /// # let spec = RunSpec::new("w", FlowMeterConfig::test_profile(),
    /// #                         Scenario::steady(50.0, 4.0), 1);
    /// let spec = spec.with_config(LineConfig::new().with_modality(Modality::HeatPulse));
    /// ```
    pub fn with_config(mut self, line: LineConfig) -> Self {
        self.modality = line.modality;
        self.config.afe_tier = line.afe_tier;
        self.maintenance = line.maintenance;
        self.obs = line.obs;
        self.faults = line.faults;
        self
    }

    /// Selects the sensing modality of the device under test. The rest of
    /// the spec (scenario, faults, windows, record policy) is
    /// modality-agnostic, so the same template can be stamped out across
    /// modalities for head-to-head comparisons (experiment `m1`).
    #[deprecated(
        since = "0.1.0",
        note = "group the per-line instrument knobs in a `LineConfig` and use `with_config`"
    )]
    pub fn with_modality(mut self, modality: Modality) -> Self {
        self.modality = modality;
        self
    }

    /// Overrides the die parameters.
    pub fn with_params(mut self, params: MafParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the meter seed (component tolerances, noise).
    pub fn with_meter_seed(mut self, seed: u64) -> Self {
        self.meter_seed = seed;
        self
    }

    /// Overrides the line seed (turbulence, reference noise).
    pub fn with_line_seed(mut self, seed: u64) -> Self {
        self.line_seed = seed;
        self
    }

    /// Sets the calibration step.
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// Auto-zeroes the direction channel in still water before the run.
    pub fn with_auto_zero(mut self, seconds: f64) -> Self {
        self.auto_zero_s = Some(seconds);
        self
    }

    /// Injects a seeded fault schedule during the run.
    #[deprecated(
        since = "0.1.0",
        note = "group the per-line instrument knobs in a `LineConfig` and use `with_config`"
    )]
    pub fn with_faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Sets the trace recording cadence.
    pub fn with_sample_period(mut self, seconds: f64) -> Self {
        self.sample_period_s = seconds;
        self
    }

    /// Selects the AFE fidelity tier for this run's meter (default
    /// [`AfeTier::Exact`]). [`AfeTier::Fast`] opts into the quasi-static
    /// once-per-frame front end — orders of magnitude faster, with the
    /// error bound pinned by the core tier tests.
    #[deprecated(
        since = "0.1.0",
        note = "group the per-line instrument knobs in a `LineConfig` and use `with_config`"
    )]
    pub fn with_afe_tier(mut self, tier: AfeTier) -> Self {
        self.config.afe_tier = tier;
        self
    }

    /// Sets every reduction window of the run at once.
    ///
    /// Accepts anything convertible to [`Windows`]; the common
    /// settle/measure pair converts from a tuple:
    ///
    /// ```
    /// # use hotwire_rig::{RunSpec, Scenario, Windows};
    /// # use hotwire_core::FlowMeterConfig;
    /// # let spec = RunSpec::new("w", FlowMeterConfig::test_profile(),
    /// #                         Scenario::steady(50.0, 4.0), 1);
    /// let spec = spec.with_windows(Windows::settled(2.0, 2.0).with_err(2.0, 4.0));
    /// // shorthand for plain settled statistics:
    /// let spec = spec.with_windows((2.0, 2.0));
    /// ```
    pub fn with_windows(mut self, windows: impl Into<Windows>) -> Self {
        self.windows = windows.into();
        self
    }

    /// Overrides the observability configuration.
    #[deprecated(
        since = "0.1.0",
        note = "group the per-line instrument knobs in a `LineConfig` and use `with_config`"
    )]
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Disables observability for this run: no event log is installed and
    /// the runner skips its hot-loop instrumentation entirely
    /// (`trace.obs` comes back `None`).
    pub fn without_obs(mut self) -> Self {
        self.obs.enabled = false;
        self
    }

    /// Sets the record policy — what the stored trace keeps of the raw
    /// samples. Sweep specs should use [`RecordPolicy::MetricsOnly`] and
    /// read the streaming [`RunOutcome::reduced`] instead of the trace.
    pub fn with_record(mut self, policy: RecordPolicy) -> Self {
        self.record = policy;
        self
    }

    /// The settled window as a half-open `[t0, t1)` interval
    /// (`measure_s == 0.0` ⇒ unbounded).
    pub fn settled_window(&self) -> (f64, f64) {
        self.windows.settled_window()
    }

    /// The streaming-reduction plan this spec's windows describe.
    pub fn reduction_plan(&self) -> ReductionPlan {
        self.windows.reduction_plan()
    }

    /// The number of samples a run of this spec is expected to record —
    /// the right capacity for a full-trace sink.
    pub fn expected_samples(&self) -> usize {
        crate::runner::expected_samples(self.scenario.duration_s, self.sample_period_s)
    }

    /// Executes this spec on the current thread, pushing every recorded
    /// sample into the caller's `recorder` — **the** single execution
    /// path: [`execute`](Self::execute), the campaign executor and the
    /// fleet engine ([`crate::fleet`]) all come through here, exactly as
    /// [`LineRunner::run`] is a thin wrapper over
    /// [`LineRunner::run_with`].
    ///
    /// Returns the run tail (UART statistics, observability) and the meter
    /// (fault latches, calibration, state intact).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the meter cannot be built or the
    /// calibration fit fails (e.g. a railed bridge at an unreachable
    /// overheat — experiment `a01` treats that as a data point).
    pub fn execute_with<R: Recorder + ?Sized>(
        &self,
        recorder: &mut R,
    ) -> Result<(RunTail, AnyMeter), CoreError> {
        let (tail, meter, _) = self.execute_runner(recorder, false)?;
        Ok((tail, meter))
    }

    /// [`execute_with`](Self::execute_with) plus a telemetry wiretap: the
    /// run's framed UART byte stream (post-corruption when the spec carries
    /// a UART fault) is returned alongside the tail and meter. The wire
    /// simulation is forced on even for clean specs, so every recorded
    /// sample frames one telemetry record onto the tap; the capture itself
    /// never perturbs the run (no extra RNG draws), so results stay
    /// bit-identical to [`execute_with`](Self::execute_with).
    ///
    /// # Errors
    ///
    /// See [`execute_with`](Self::execute_with).
    pub fn execute_wiretapped<R: Recorder + ?Sized>(
        &self,
        recorder: &mut R,
    ) -> Result<(RunTail, AnyMeter, Vec<u8>), CoreError> {
        self.execute_runner(recorder, true)
    }

    /// Builds this spec's device under test: the CTA path goes through
    /// [`build_meter`] (calibration step, optional auto-zero) exactly as it
    /// always has; the heat-pulse and reference modalities carry their own
    /// construction and ignore the spec's calibration/auto-zero fields.
    fn build_dut(&self) -> Result<AnyMeter, CoreError> {
        Ok(match self.modality {
            Modality::Cta => {
                let mut meter =
                    build_meter(self.config, self.params, self.meter_seed, &self.calibration)?;
                if let Some(seconds) = self.auto_zero_s {
                    meter.auto_zero_direction(seconds, SensorEnvironment::still_water());
                }
                AnyMeter::Cta(meter)
            }
            Modality::HeatPulse => {
                AnyMeter::HeatPulse(HeatPulseMeter::new(self.config, self.meter_seed)?)
            }
            Modality::PromagRef | Modality::TurbineRef => {
                let control_dt =
                    Seconds::new(self.config.decimation as f64 / self.config.modulator_rate.get());
                AnyMeter::Reference(ReferenceMeter::new(
                    self.modality.reference_kind().expect("reference modality"),
                    self.config.full_scale,
                    control_dt,
                    self.meter_seed,
                ))
            }
        })
    }

    /// Shared body of [`execute_with`](Self::execute_with) and
    /// [`execute_wiretapped`](Self::execute_wiretapped).
    fn execute_runner<R: Recorder + ?Sized>(
        &self,
        recorder: &mut R,
        wiretap: bool,
    ) -> Result<(RunTail, AnyMeter, Vec<u8>), CoreError> {
        let mut meter = self.build_dut()?;
        if self.obs.enabled {
            // Installed after calibration and auto-zero, so the event log
            // covers exactly the scenario run.
            meter.set_observer(Box::new(EventLog::with_capacity(self.obs.event_capacity)));
        }
        let mut runner = LineRunner::new(self.scenario.clone(), meter, self.line_seed);
        if self.maintenance.is_active() {
            let control_dt = runner.meter().control_period();
            runner.install_maintenance(MaintenanceEngine::new(self.maintenance, control_dt));
        }
        if let Some(schedule) = &self.faults {
            runner.install_faults(schedule.clone());
        }
        if wiretap {
            runner.capture_wire();
        }
        let tail = runner.run_with(self.sample_period_s, recorder);
        let wire = runner.take_wire();
        Ok((tail, runner.into_meter(), wire))
    }

    /// Executes this spec on the current thread: build the meter, apply the
    /// calibration, optionally auto-zero, run the scenario. Thin wrapper
    /// over [`execute_with`](Self::execute_with) with a policy-driven
    /// [`PolicyRecorder`] sink.
    ///
    /// # Errors
    ///
    /// See [`execute_with`](Self::execute_with).
    pub fn execute(&self) -> Result<RunOutcome, CoreError> {
        let mut recorder = PolicyRecorder::new(self.record, self.reduction_plan());
        recorder.reserve(self.expected_samples());
        let (tail, meter) = self.execute_with(&mut recorder)?;
        let (samples, reduced) = recorder.finish();
        Ok(RunOutcome {
            label: self.label.clone(),
            trace: Trace {
                samples,
                uart: tail.uart,
                obs: tail.obs,
            },
            reduced,
            meter,
            maintenance: tail.maintenance,
            settle_s: self.windows.settle_s,
            measure_s: self.windows.measure_s,
        })
    }
}

/// The result of one executed [`RunSpec`].
#[derive(Debug)]
pub struct RunOutcome {
    /// The spec's label.
    pub label: String,
    /// The recorded co-simulation trace. Under
    /// [`RecordPolicy::MetricsOnly`] the sample store is empty — read
    /// [`reduced`](Self::reduced) instead.
    pub trace: Trace,
    /// Streaming reductions folded during the run (computed under every
    /// record policy; bit-identical to post-hoc reductions over a
    /// [`RecordPolicy::Full`] trace of the same spec).
    pub reduced: RunReductions,
    /// The meter after the run (fault latches, calibration, state intact).
    /// CTA specs carry an [`AnyMeter::Cta`]; unwrap with
    /// [`AnyMeter::as_cta`] when CTA-specific state is needed.
    pub meter: AnyMeter,
    /// Maintenance-policy actions taken during the run (all zero unless
    /// the spec carried an active [`Maintenance`] config).
    pub maintenance: MaintenanceCounters,
    /// The spec's settling time (for the settled-window statistics).
    pub settle_s: f64,
    /// The spec's measurement-window length (`0.0` = to the end).
    pub measure_s: f64,
}

impl RunOutcome {
    /// Statistics of the DUT output over the spec's settled window,
    /// reduced while the run streamed — no trace pass, no allocation.
    pub fn settled(&self) -> Welford {
        self.reduced.settled
    }

    /// The spec's `i`-th extra window ([`Windows::with_extra`]), reduced
    /// while the run streamed.
    ///
    /// # Panics
    ///
    /// Panics if the spec declared fewer than `i + 1` extra windows.
    pub fn window(&self, i: usize) -> Welford {
        self.reduced.windows[i]
    }

    /// Mean DUT output over the settled window, cm/s.
    pub fn settled_mean(&self) -> f64 {
        self.settled().mean()
    }

    /// Standard deviation of the DUT output over the settled window, cm/s.
    pub fn settled_std(&self) -> f64 {
        self.settled().std_dev()
    }
}

/// Builds and calibrates a meter per a [`Calibration`] step, without
/// running any scenario. The campaign executor uses this per spec; it is
/// public because experiments that drive meters directly (duty-cycling,
/// profile probes) want the same construction path.
///
/// # Errors
///
/// Returns [`CoreError`] if construction or the calibration fit fails.
pub fn build_meter(
    config: FlowMeterConfig,
    params: MafParams,
    seed: u64,
    calibration: &Calibration,
) -> Result<FlowMeter, CoreError> {
    let mut meter = FlowMeter::new(config, params, seed)?;
    match calibration {
        Calibration::Factory => {}
        Calibration::Field(recipe) => {
            // Setpoints run serially here: the campaign already owns the
            // worker threads, and the result is jobs-invariant anyway.
            recipe.apply(&mut meter, 1)?;
        }
        Calibration::Points {
            points,
            fluid_estimate,
        } => {
            if let Some(estimate) = fluid_estimate {
                meter.adopt_fluid_estimate(*estimate);
            }
            meter.calibrate(points)?;
        }
    }
    Ok(meter)
}

/// Collects field-calibration observations for `prototype`'s build
/// (config, die parameters, seed) by running each setpoint of `recipe` on
/// its own replica meter, up to `jobs` at a time.
///
/// Returns the fitted points plus the mean converged fluid-temperature
/// estimate across setpoints — adopt it
/// ([`FlowMeter::adopt_fluid_estimate`]) before calling
/// [`FlowMeter::calibrate`] so temperature compensation learns the same
/// reference-resistor skew the calibration runs saw.
///
/// Per-setpoint seeds match the historical serial procedure: line
/// `seed + i`, reference noise `seed ^ (i << 8)`.
///
/// # Errors
///
/// Returns [`CoreError`] if a replica cannot be built or a setpoint
/// records no settled samples.
pub fn collect_calibration_points(
    prototype: &FlowMeter,
    recipe: &FieldCalibration,
    jobs: usize,
) -> Result<(Vec<CalPoint>, Celsius), CoreError> {
    let config = *prototype.config();
    let params = *prototype.die().params();
    let meter_seed = prototype.build_seed();
    let results = exec::parallel_map_indexed(
        &recipe.setpoints_cm_s,
        jobs,
        |i, &setpoint| -> Result<(CalPoint, f64), CoreError> {
            let mut meter = FlowMeter::new(config, params, meter_seed)?;
            let control_dt = Seconds::new(config.decimation as f64 / config.modulator_rate.get());
            let scenario = Scenario::steady(setpoint, recipe.settle_s + recipe.average_s);
            let mut line = WaterLine::new(scenario, recipe.seed.wrapping_add(i as u64));
            let mut promag = Promag50::new(config.full_scale);
            let mut ref_rng = StdRng::seed_from_u64(recipe.seed ^ ((i as u64) << 8));
            let mut env = SensorEnvironment::still_water();
            let (mut g_sum, mut v_sum, mut n) = (0.0, 0.0, 0u64);
            while !line.finished() {
                // A fresh replica is frame-aligned and stays aligned: each
                // control tick is one whole modulator frame, run as a SoA
                // block walk (bit-identical to per-tick stepping).
                let _ = meter.step_frame(env);
                env = line.step(control_dt);
                let promag_reading = promag.step(control_dt, line.bulk_velocity(), &mut ref_rng);
                if line.time() >= recipe.settle_s {
                    g_sum += meter.instantaneous_conductance().get();
                    v_sum += promag_reading.to_cm_per_s().abs();
                    n += 1;
                }
            }
            if n == 0 {
                return Err(CoreError::Calibration {
                    reason: "calibration setpoint recorded no settled samples",
                });
            }
            let point = CalPoint {
                velocity: MetersPerSecond::from_cm_per_s(v_sum / n as f64),
                conductance: ThermalConductance::new(g_sum / n as f64),
            };
            // Fresh replicas carry no temperature offset, so this is the
            // raw converged estimate.
            Ok((point, meter.fluid_temperature_estimate().get()))
        },
    );

    let mut points = Vec::with_capacity(results.len());
    let mut estimate_sum = 0.0;
    for result in results {
        let (point, estimate) = result?;
        points.push(point);
        estimate_sum += estimate;
    }
    let mean_estimate = Celsius::new(estimate_sum / points.len().max(1) as f64);
    Ok((points, mean_estimate))
}

/// Executes batches of [`RunSpec`]s across worker threads.
///
/// The executor is a thin, copyable handle: it holds only the job count.
/// See the module docs for the determinism guarantee.
#[derive(Debug, Clone, Copy)]
pub struct Campaign {
    jobs: usize,
}

impl Campaign {
    /// A campaign using the process-wide default job count
    /// ([`exec::default_jobs`] — all cores unless `repro --jobs` or
    /// [`exec::set_default_jobs`] said otherwise).
    pub fn new() -> Self {
        Campaign {
            jobs: exec::default_jobs(),
        }
    }

    /// A campaign with an explicit job count (`1` = serial, on the calling
    /// thread).
    pub fn with_jobs(jobs: usize) -> Self {
        Campaign { jobs: jobs.max(1) }
    }

    /// The number of worker threads this campaign uses.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes every spec, returning one `Result` per spec in spec order.
    ///
    /// Use this when a calibration failure is itself a data point (e.g.
    /// the overheat study's railed configurations).
    ///
    /// The batch's merged observability ([`obs::merge_outcomes`], spec
    /// order → jobs-invariant) is recorded into the process-wide registry
    /// under the calling thread's experiment scope, if one is active
    /// ([`obs::scoped`]) — along with the batch's wall-clock, which feeds
    /// the samples/s profiling in `repro --json` and is the only
    /// non-deterministic quantity recorded.
    pub fn try_run(&self, specs: &[RunSpec]) -> Vec<Result<RunOutcome, CoreError>> {
        let started = std::time::Instant::now();
        let results = self.map(specs, |_, spec| spec.execute());
        let wall_s = started.elapsed().as_secs_f64();
        let outcomes: Vec<&RunOutcome> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        let mut snapshot = obs::ObsSnapshot::default();
        for outcome in outcomes {
            if let Some(run_obs) = &outcome.trace.obs {
                snapshot.absorb_run(&outcome.label, run_obs);
            }
        }
        obs::record_campaign(&snapshot, wall_s);
        results
    }

    /// Executes every spec, failing fast on the first error (in spec
    /// order).
    ///
    /// # Errors
    ///
    /// Returns the first spec's [`CoreError`], if any.
    pub fn run(&self, specs: &[RunSpec]) -> Result<Vec<RunOutcome>, CoreError> {
        self.try_run(specs).into_iter().collect()
    }

    /// Runs an arbitrary per-item job under this campaign's thread budget,
    /// preserving item order. The escape hatch for experiments whose unit
    /// of work is not a scenario run (duty-cycle sweeps, profile probes,
    /// pure-model evaluations).
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        exec::parallel_map_indexed(items, self.jobs, f)
    }
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(i: u64) -> RunSpec {
        RunSpec::new(
            format!("s{i}"),
            FlowMeterConfig::test_profile(),
            Scenario::steady(60.0 + 30.0 * i as f64, 2.0),
            derive_seed(0xBEEF, i),
        )
        .with_windows((1.0, 1.0))
    }

    #[test]
    fn derive_seed_spreads_indices() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable across calls.
        assert_eq!(a, derive_seed(1, 0));
    }

    #[test]
    fn campaign_runs_specs_in_order() {
        let specs: Vec<RunSpec> = (0..3).map(spec).collect();
        let outcomes = Campaign::with_jobs(3).run(&specs).unwrap();
        assert_eq!(outcomes.len(), 3);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.label, format!("s{i}"));
            assert!(!o.trace.samples.is_empty());
            // Settled mean should land near the commanded setpoint even on
            // factory calibration.
            let target = 60.0 + 30.0 * i as f64;
            assert!(
                (o.settled_mean() - target).abs() < 0.5 * target,
                "spec {i}: settled mean {} vs target {target}",
                o.settled_mean()
            );
        }
    }

    #[test]
    fn parallel_outcomes_are_bit_identical_to_serial() {
        // The tentpole guarantee: same specs, any job count, identical
        // traces. Comparing through `f64::to_bits` on every field is
        // strictly stronger than comparing serialized bytes.
        let specs: Vec<RunSpec> = (0..4).map(spec).collect();
        let serial = Campaign::with_jobs(1).run(&specs).unwrap();
        let parallel = Campaign::with_jobs(4).run(&specs).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.trace.samples.len(), b.trace.samples.len(), "{}", a.label);
            for (sa, sb) in a.trace.samples.iter().zip(&b.trace.samples) {
                assert_eq!(sa.t.to_bits(), sb.t.to_bits());
                assert_eq!(sa.true_cm_s.to_bits(), sb.true_cm_s.to_bits());
                assert_eq!(sa.dut_cm_s.to_bits(), sb.dut_cm_s.to_bits());
                assert_eq!(sa.promag_cm_s.to_bits(), sb.promag_cm_s.to_bits());
                assert_eq!(sa.turbine_cm_s.to_bits(), sb.turbine_cm_s.to_bits());
                assert_eq!(sa.supply_code, sb.supply_code);
                assert_eq!(sa.bubble_coverage.to_bits(), sb.bubble_coverage.to_bits());
                assert_eq!(sa.fouling_um.to_bits(), sb.fouling_um.to_bits());
                assert_eq!(sa.fault, sb.fault);
                assert_eq!(sa.health, sb.health);
            }
            // The observability layer obeys the same guarantee: per-run
            // counters, histograms and event logs match exactly.
            assert_eq!(a.trace.obs, b.trace.obs, "{}", a.label);
        }
        // And so does the campaign-wide merged snapshot.
        assert_eq!(
            crate::obs::merge_outcomes(&serial),
            crate::obs::merge_outcomes(&parallel)
        );
    }

    #[test]
    fn faulted_campaigns_stay_bit_identical_across_job_counts() {
        use crate::fault::{FaultKind, FaultSchedule};
        // Fault injection must not break the determinism contract: the
        // injection RNG is part of the spec, so traces — and the UART wire
        // statistics — match bit-for-bit at any job count.
        let specs: Vec<RunSpec> = (0..3)
            .map(|i| {
                spec(i).with_config(
                    LineConfig::new().with_faults(
                        FaultSchedule::new(derive_seed(0xFA57, i))
                            .with_event(0.5, 0.4, FaultKind::AdcStuck { code: 900 })
                            .with_event(
                                0.2,
                                1.5,
                                FaultKind::UartCorruption {
                                    flip_per_byte: 0.02,
                                    drop_per_byte: 0.02,
                                },
                            ),
                    ),
                )
            })
            .collect();
        let serial = Campaign::with_jobs(1).run(&specs).unwrap();
        let parallel = Campaign::with_jobs(3).run(&specs).unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.trace.uart, b.trace.uart, "{}", a.label);
            assert_eq!(a.trace.samples.len(), b.trace.samples.len(), "{}", a.label);
            for (sa, sb) in a.trace.samples.iter().zip(&b.trace.samples) {
                assert_eq!(sa.dut_cm_s.to_bits(), sb.dut_cm_s.to_bits());
                assert_eq!(sa.supply_code, sb.supply_code);
                assert_eq!(sa.health, sb.health);
            }
            // Fault campaigns carry the densest event logs (activations,
            // clears, frame errors) — they must match too.
            assert_eq!(a.trace.obs, b.trace.obs, "{}", a.label);
            let obs = a.trace.obs.as_ref().unwrap();
            assert!(
                obs.counters.faults_activated >= 2,
                "{}: both scheduled faults should activate",
                a.label
            );
        }
        assert_eq!(
            crate::obs::merge_outcomes(&serial),
            crate::obs::merge_outcomes(&parallel)
        );
    }

    #[test]
    fn shared_points_calibration_matches_field() {
        let proto =
            FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), 77).unwrap();
        let recipe = FieldCalibration::paper(0.6, 0.4, 77);
        let (points, estimate) = collect_calibration_points(&proto, &recipe, 2).unwrap();
        assert_eq!(points.len(), PAPER_SETPOINTS_CM_S.len());

        // A meter calibrated via the Points fast path behaves like one
        // that ran the Field procedure itself.
        let via_points = build_meter(
            *proto.config(),
            *proto.die().params(),
            77,
            &Calibration::Points {
                points: points.clone(),
                fluid_estimate: Some(estimate),
            },
        )
        .unwrap();
        let via_field = build_meter(
            *proto.config(),
            *proto.die().params(),
            77,
            &Calibration::Field(recipe),
        )
        .unwrap();
        let a = via_points.calibration().unwrap();
        let b = via_field.calibration().unwrap();
        assert_eq!(a.a.to_bits(), b.a.to_bits());
        assert_eq!(a.b.to_bits(), b.b.to_bits());
        assert_eq!(a.n.to_bits(), b.n.to_bits());
    }

    #[test]
    fn windows_tuple_shorthand_is_settled() {
        let w: Windows = (2.0, 3.0).into();
        assert_eq!(w, Windows::settled(2.0, 3.0));
        assert_eq!(w.settled_window(), (2.0, 5.0));
        assert_eq!(Windows::settled(2.0, 0.0).settled_window().1, f64::INFINITY);
        assert_eq!(Windows::none(), Windows::default());
    }

    #[test]
    fn execute_with_is_the_single_execution_path() {
        // execute() is a thin wrapper over execute_with(): streaming the
        // same spec into an explicit PolicyRecorder reproduces the outcome
        // bit for bit.
        let s = spec(1);
        let via_execute = s.execute().unwrap();
        let mut recorder = PolicyRecorder::new(s.record, s.reduction_plan());
        recorder.reserve(s.expected_samples());
        let (tail, _meter) = s.execute_with(&mut recorder).unwrap();
        let (samples, reduced) = recorder.finish();
        assert_eq!(via_execute.trace.samples, samples);
        assert_eq!(via_execute.trace.uart, tail.uart);
        assert_eq!(via_execute.trace.obs, tail.obs);
        assert_eq!(via_execute.reduced, reduced);
    }

    #[test]
    fn with_config_matches_the_deprecated_builders() {
        // The grouped entry point must pin the deprecated per-knob
        // builders bit-identically: same final spec (specs derive
        // PartialEq over every field), therefore same execution.
        let schedule = FaultSchedule::new(derive_seed(0xC0FE, 1)).with_event(
            0.5,
            0.4,
            crate::fault::FaultKind::AdcStuck { code: 800 },
        );
        let obs = ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        };
        #[allow(deprecated)]
        let sprawl = spec(0)
            .with_modality(Modality::HeatPulse)
            .with_afe_tier(AfeTier::Fast)
            .with_obs(obs)
            .with_faults(schedule.clone());
        let mut grouped_spec = spec(0).with_config(
            LineConfig::new()
                .with_modality(Modality::HeatPulse)
                .with_afe_tier(AfeTier::Fast)
                .with_obs(obs)
                .with_faults(schedule),
        );
        // The deprecated surface has no maintenance builder — the knob
        // only exists grouped; equalize it before comparing.
        grouped_spec.maintenance = Maintenance::default();
        assert_eq!(sprawl, grouped_spec);

        // And with maintenance on, the grouped spec routes it through
        // execution: the engine installs and its counters come back on
        // the outcome (zero-drift line ⇒ the scheduled trigger falls
        // back to re-zeros, never refits).
        let eager = Maintenance::new(crate::maintain::Policy::Scheduled { period_s: 0.2 })
            .with_min_service_interval(0.1);
        let outcome = spec(1)
            .with_config(LineConfig::new().with_maintenance(eager))
            .execute()
            .unwrap();
        assert!(
            outcome.maintenance.re_zeros > 0,
            "scheduled policy never serviced: {:?}",
            outcome.maintenance
        );
        assert_eq!(outcome.maintenance.refits, 0);
    }

    #[test]
    fn try_run_surfaces_per_spec_errors() {
        // An impossible calibration (empty grid) must fail its spec only.
        let bad = spec(0).with_calibration(Calibration::Field(FieldCalibration {
            setpoints_cm_s: Vec::new(),
            settle_s: 0.1,
            average_s: 0.1,
            seed: 1,
        }));
        let good = spec(1);
        let results = Campaign::with_jobs(2).try_run(&[bad, good]);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
    }
}
