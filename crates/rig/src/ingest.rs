//! Service-side telemetry ingest: the monitoring backend of §6's diffuse
//! deployment.
//!
//! The paper closes with probes "widely diffused all over the water
//! distribution channels" reporting to the network operator. The simulator
//! side of that story already exists — every line frames CRC-protected
//! [`TelemetryRecord`]s onto a (possibly noisy) UART — and this module
//! supplies the *operator* side: reassemble and validate the framed byte
//! streams of many concurrent lines, keep per-meter session state (last
//! tick, tick-gap/loss detection, flag history), and derive a fleet health
//! census plus an alert stream **purely from the wire records**. Because
//! the simulator also knows the ground truth (the firmware's
//! `HealthMonitor` state recorded in each line's
//! [`RunReductions::health_census`](crate::record::RunReductions::health_census)),
//! ingest can score its own detection
//! fidelity — the quantity the paper's "immediately localized and
//! isolated" claim rests on.
//!
//! # Pipeline
//!
//! ```text
//! FleetSpec ──line_spec(i)──▶ RunSpec::execute_wiretapped ─▶ wire bytes
//!                                                              │ chunks
//!                                                              ▼
//!                              MeterSession (bounded queue, DropPolicy)
//!                                │ FrameDecoder + RecordDecodeStats
//!                                ▼
//!                   per-line census · flag history · tick-gap alerts
//!                                │ merge in line order
//!                                ▼
//!                   IngestReport (stats, census, Fidelity) — bit-identical
//!                   at any job count
//! ```
//!
//! Each line is a pure function of the fleet spec and its index (exactly
//! the fleet engine's determinism contract), and per-line results merge in
//! line order, so the whole report is bit-identical at any `jobs`.
//!
//! # Backpressure
//!
//! Real collectors sit behind finite buffers. [`MeterSession`] owns a
//! bounded byte queue with an explicit [`DropPolicy`]; every byte that
//! cannot be accepted is *counted* ([`IngestStats::bytes_dropped`] /
//! [`IngestStats::bytes_deferred`]), never silently lost — the same
//! no-invisible-loss discipline the decode layer's
//! [`LinkStats`] byte ledger enforces.

use crate::campaign::RunSpec;
use crate::exec;
use crate::fleet::FleetSpec;
use crate::record::{HealthCensus, PolicyRecorder, RecordPolicy};
use hotwire_core::{CoreError, HealthState, RecordDecodeStats, TelemetryRecord};
use hotwire_isif::uart::{FrameDecoder, LinkStats};
use std::collections::VecDeque;

/// What a [`MeterSession`] does with bytes that arrive while its queue is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropPolicy {
    /// Reject the arriving bytes; the caller must retry after a poll.
    /// Rejected bytes are tallied as `bytes_deferred` (once per rejection,
    /// so retried bytes count each attempt).
    #[default]
    Backpressure,
    /// Discard the arriving bytes (tail drop); tallied as `bytes_dropped`.
    DropNewest,
    /// Evict the oldest queued bytes to make room (head drop); evicted
    /// bytes are tallied as `bytes_dropped`.
    DropOldest,
}

/// Configuration shared by every [`MeterSession`] of an ingest run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Per-line byte queue capacity.
    pub queue_capacity: usize,
    /// What to do when the queue is full.
    pub drop_policy: DropPolicy,
    /// Expected control-tick gap between consecutive records; `0` means
    /// learn it from the first observed gap of each session.
    pub nominal_tick_gap: u32,
    /// Maximum alerts retained per session (the *counts* keep going after
    /// the cap; only the alert objects stop accumulating).
    pub alert_capacity: usize,
    /// Bytes offered to a session per chunk when feeding a captured wire
    /// (models the collector's read granularity).
    pub chunk_bytes: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_capacity: 4096,
            drop_policy: DropPolicy::Backpressure,
            nominal_tick_gap: 0,
            alert_capacity: 64,
            chunk_bytes: 64,
        }
    }
}

impl IngestConfig {
    /// A config whose expected tick gap is derived from the fleet's sample
    /// cadence and control rate (the records of a healthy line are spaced
    /// by one trace sample, i.e. `sample_period / control_dt` control
    /// ticks).
    pub fn for_fleet(spec: &FleetSpec) -> Self {
        let control_dt = spec.config.decimation as f64 / spec.config.modulator_rate.get();
        let gap = (spec.sample_period_s / control_dt).round().max(1.0) as u32;
        IngestConfig {
            nominal_tick_gap: gap,
            ..IngestConfig::default()
        }
    }
}

/// One condition the ingest service flags for the operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// The reported health state changed between consecutive records.
    HealthChanged {
        /// State before the transition.
        from: HealthState,
        /// State after the transition.
        to: HealthState,
    },
    /// The control-tick gap between consecutive records implies lost
    /// records.
    TickGap {
        /// Estimated records lost in the gap.
        missed: u32,
    },
    /// A CRC-valid frame failed record validation.
    Malformed,
}

/// One alert raised by a [`MeterSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alert {
    /// The line the alert concerns.
    pub line: usize,
    /// Control tick of the record that triggered the alert (the last good
    /// tick for [`AlertKind::Malformed`]).
    pub tick: u32,
    /// What happened.
    pub kind: AlertKind,
}

/// Occurrence counts of the per-record fault flags a session has seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlagHistory {
    /// Records with the bubble-activity flag set.
    pub bubble: u64,
    /// Records with the fouling-suspected flag set.
    pub fouling: u64,
    /// Records with the loop-saturated flag set.
    pub saturated: u64,
}

impl FlagHistory {
    /// Adds another history into this one.
    pub fn merge(&mut self, other: &FlagHistory) {
        self.bubble += other.bubble;
        self.fouling += other.fouling;
        self.saturated += other.saturated;
    }
}

/// Additive counters describing everything one session (or a whole merged
/// ingest run) did with its byte stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Bytes accepted into the queue.
    pub bytes_in: u64,
    /// Bytes discarded by the [`DropPolicy`].
    pub bytes_dropped: u64,
    /// Byte-rejection tallies under [`DropPolicy::Backpressure`] (retried
    /// bytes count once per rejected attempt).
    pub bytes_deferred: u64,
    /// Frame-layer counters from the session's [`FrameDecoder`].
    pub link: LinkStats,
    /// Record-layer parse tallies.
    pub records: RecordDecodeStats,
    /// Records inferred lost from control-tick gaps.
    pub records_lost: u64,
    /// Tick-gap events observed.
    pub tick_gaps: u64,
    /// Health-state transitions observed on the wire.
    pub health_transitions: u64,
    /// Alerts raised (including those beyond the retention cap).
    pub alerts_raised: u64,
    /// Alerts dropped by the retention cap.
    pub alerts_dropped: u64,
    /// Per-record fault-flag occurrence counts.
    pub flags: FlagHistory,
}

impl IngestStats {
    /// Adds another stat block into this one. Merging per-line stats in
    /// line order is the whole jobs-invariance story: every field is an
    /// additive counter, so the merged result is independent of which
    /// thread produced which line.
    pub fn merge(&mut self, other: &IngestStats) {
        self.bytes_in += other.bytes_in;
        self.bytes_dropped += other.bytes_dropped;
        self.bytes_deferred += other.bytes_deferred;
        self.link.merge(&other.link);
        self.records.merge(&other.records);
        self.records_lost += other.records_lost;
        self.tick_gaps += other.tick_gaps;
        self.health_transitions += other.health_transitions;
        self.alerts_raised += other.alerts_raised;
        self.alerts_dropped += other.alerts_dropped;
        self.flags.merge(&other.flags);
    }
}

/// Per-meter session state: one bounded-queue decoder pipeline plus the
/// derived monitoring state for a single line.
#[derive(Debug)]
pub struct MeterSession {
    line: usize,
    config: IngestConfig,
    queue: VecDeque<u8>,
    decoder: FrameDecoder,
    records: RecordDecodeStats,
    bytes_in: u64,
    bytes_dropped: u64,
    bytes_deferred: u64,
    records_lost: u64,
    tick_gaps: u64,
    health_transitions: u64,
    last_tick: Option<u32>,
    cadence: u32,
    last_health: Option<HealthState>,
    flags: FlagHistory,
    census: HealthCensus,
    alerts: Vec<Alert>,
    alerts_raised: u64,
    alerts_dropped: u64,
}

impl MeterSession {
    /// A fresh session for `line`.
    pub fn new(line: usize, config: IngestConfig) -> Self {
        MeterSession {
            line,
            queue: VecDeque::with_capacity(config.queue_capacity.min(4096)),
            decoder: FrameDecoder::new(),
            records: RecordDecodeStats::default(),
            bytes_in: 0,
            bytes_dropped: 0,
            bytes_deferred: 0,
            records_lost: 0,
            tick_gaps: 0,
            health_transitions: 0,
            last_tick: None,
            cadence: config.nominal_tick_gap,
            last_health: None,
            flags: FlagHistory::default(),
            census: HealthCensus::default(),
            alerts: Vec::new(),
            alerts_raised: 0,
            alerts_dropped: 0,
            config,
        }
    }

    /// Offers `bytes` to the session's bounded queue; returns how many were
    /// *consumed* (accepted or deliberately dropped — the caller must only
    /// retry the unconsumed tail, which is non-empty solely under
    /// [`DropPolicy::Backpressure`]).
    pub fn offer(&mut self, bytes: &[u8]) -> usize {
        let free = self.config.queue_capacity.saturating_sub(self.queue.len());
        match self.config.drop_policy {
            DropPolicy::Backpressure => {
                let take = bytes.len().min(free);
                self.queue.extend(&bytes[..take]);
                self.bytes_in += take as u64;
                self.bytes_deferred += (bytes.len() - take) as u64;
                take
            }
            DropPolicy::DropNewest => {
                let take = bytes.len().min(free);
                self.queue.extend(&bytes[..take]);
                self.bytes_in += take as u64;
                self.bytes_dropped += (bytes.len() - take) as u64;
                bytes.len()
            }
            DropPolicy::DropOldest => {
                self.queue.extend(bytes);
                self.bytes_in += bytes.len() as u64;
                while self.queue.len() > self.config.queue_capacity {
                    self.queue.pop_front();
                    self.bytes_dropped += 1;
                }
                bytes.len()
            }
        }
    }

    /// Drains the queue through the frame decoder, folding every decoded
    /// record into the session state. Returns records processed.
    pub fn poll(&mut self) -> usize {
        let mut processed = 0;
        while let Some(b) = self.queue.pop_front() {
            if let Some(payload) = self.decoder.push(b) {
                self.accept_frame(&payload);
                processed += 1;
            }
        }
        processed
    }

    /// Ends the stream: drains the queue, then flushes the decoder (an
    /// idle line is end-of-stream), folding any frames the flush recovers.
    pub fn finish(&mut self) {
        self.poll();
        for payload in self.decoder.flush() {
            self.accept_frame(&payload);
        }
    }

    fn accept_frame(&mut self, payload: &[u8]) {
        let outcome = TelemetryRecord::parse(payload);
        self.records.tally(&outcome);
        match outcome {
            Ok(record) => self.accept_record(&record),
            Err(_) => {
                let tick = self.last_tick.unwrap_or(0);
                self.raise(tick, AlertKind::Malformed);
            }
        }
    }

    fn accept_record(&mut self, record: &TelemetryRecord) {
        self.census.record(record.health);
        self.flags.bubble += record.bubble as u64;
        self.flags.fouling += record.fouling as u64;
        self.flags.saturated += record.saturated as u64;
        if let Some(last) = self.last_tick {
            let gap = record.tick.wrapping_sub(last);
            if self.cadence == 0 {
                // Learning mode: the first gap defines the cadence.
                self.cadence = gap.max(1);
            } else if gap > self.cadence {
                // Round to the nearest whole number of cadences; anything
                // beyond one implies lost records.
                let missed = (gap + self.cadence / 2) / self.cadence - 1;
                if missed > 0 {
                    self.records_lost += u64::from(missed);
                    self.tick_gaps += 1;
                    self.raise(record.tick, AlertKind::TickGap { missed });
                }
            }
        }
        self.last_tick = Some(record.tick);
        if let Some(prev) = self.last_health {
            if prev != record.health {
                self.health_transitions += 1;
                self.raise(
                    record.tick,
                    AlertKind::HealthChanged {
                        from: prev,
                        to: record.health,
                    },
                );
            }
        }
        self.last_health = Some(record.health);
    }

    fn raise(&mut self, tick: u32, kind: AlertKind) {
        self.alerts_raised += 1;
        if self.alerts.len() < self.config.alert_capacity {
            self.alerts.push(Alert {
                line: self.line,
                tick,
                kind,
            });
        } else {
            self.alerts_dropped += 1;
        }
    }

    /// The line index this session monitors.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The health census of every record seen so far.
    pub fn census(&self) -> &HealthCensus {
        &self.census
    }

    /// The most recent health state reported on the wire.
    pub fn last_health(&self) -> Option<HealthState> {
        self.last_health
    }

    /// The alerts retained so far (capped at the config's
    /// `alert_capacity`).
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// A snapshot of every counter the session maintains.
    pub fn stats(&self) -> IngestStats {
        IngestStats {
            bytes_in: self.bytes_in,
            bytes_dropped: self.bytes_dropped,
            bytes_deferred: self.bytes_deferred,
            link: self.decoder.stats(),
            records: self.records,
            records_lost: self.records_lost,
            tick_gaps: self.tick_gaps,
            health_transitions: self.health_transitions,
            alerts_raised: self.alerts_raised,
            alerts_dropped: self.alerts_dropped,
            flags: self.flags,
        }
    }
}

/// Line-level detection-fidelity confusion counts: did the wire-derived
/// census flag the same lines as unhealthy that the ground-truth
/// `HealthMonitor` did?
///
/// A line is *truth-bad* when its ground-truth census holds any
/// non-Healthy sample, and *seen-bad* when its ingest census does.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fidelity {
    /// Lines scored.
    pub lines: u64,
    /// Truth-bad lines the wire census also flagged.
    pub true_positives: u64,
    /// Truth-bad lines the wire census missed.
    pub false_negatives: u64,
    /// Healthy lines the wire census flagged anyway.
    pub false_positives: u64,
    /// Healthy lines the wire census agreed were healthy.
    pub true_negatives: u64,
}

impl Fidelity {
    /// Scores one line.
    pub fn score(&mut self, seen: &HealthCensus, truth: &HealthCensus) {
        let bad = |c: &HealthCensus| c.total() > c.count(HealthState::Healthy);
        self.lines += 1;
        match (bad(seen), bad(truth)) {
            (true, true) => self.true_positives += 1,
            (false, true) => self.false_negatives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Fraction of lines classified correctly (`1.0` when no lines were
    /// scored).
    pub fn detection_accuracy(&self) -> f64 {
        if self.lines == 0 {
            return 1.0;
        }
        (self.true_positives + self.true_negatives) as f64 / self.lines as f64
    }

    /// Adds another score block into this one.
    pub fn merge(&mut self, other: &Fidelity) {
        self.lines += other.lines;
        self.true_positives += other.true_positives;
        self.false_negatives += other.false_negatives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
    }
}

/// Everything ingest learned from one line.
#[derive(Debug)]
pub struct LineIngest {
    /// The line index.
    pub line: usize,
    /// The session's counters.
    pub stats: IngestStats,
    /// Census of the records decoded from the wire.
    pub census: HealthCensus,
    /// Ground-truth census from the simulator's recorded samples.
    pub truth: HealthCensus,
    /// Frames the line actually encoded onto the wire.
    pub frames_sent: u64,
    /// Last health state seen on the wire.
    pub last_health: Option<HealthState>,
    /// Alerts retained by the session.
    pub alerts: Vec<Alert>,
}

/// The merged outcome of ingesting a whole fleet.
#[derive(Debug)]
pub struct IngestReport {
    /// Lines ingested.
    pub lines: usize,
    /// Counters merged over every line, in line order.
    pub stats: IngestStats,
    /// Wire-derived health census merged over every line.
    pub census: HealthCensus,
    /// Ground-truth census merged over every line.
    pub truth: HealthCensus,
    /// Frames encoded onto all wires.
    pub frames_sent: u64,
    /// Lines from which not a single record decoded.
    pub lines_silent: u64,
    /// Detection-fidelity confusion counts over lines.
    pub fidelity: Fidelity,
    /// The first alerts in line order, up to the config's
    /// `alert_capacity` in total.
    pub sample_alerts: Vec<Alert>,
}

impl IngestReport {
    /// Fraction of sent frames that decoded into valid records.
    pub fn delivery_ratio(&self) -> f64 {
        if self.frames_sent == 0 {
            return 1.0;
        }
        self.stats.records.records as f64 / self.frames_sent as f64
    }
}

/// Simulates one fleet line with the telemetry wiretap on and runs its
/// captured byte stream through a fresh [`MeterSession`].
///
/// # Errors
///
/// Returns [`CoreError`] if the line's meter cannot be built or calibrated
/// (see [`RunSpec::execute_with`]).
pub fn ingest_line(
    fleet: &FleetSpec,
    config: &IngestConfig,
    line: usize,
) -> Result<LineIngest, CoreError> {
    let spec = fleet.line_spec(line);
    ingest_spec(&spec, config, line)
}

/// [`ingest_line`] for an explicit [`RunSpec`] — the load-generator entry
/// point `ingest_bench` uses to capture a corpus once and replay it many
/// times.
///
/// # Errors
///
/// Returns [`CoreError`] if the spec cannot execute.
pub fn ingest_spec(
    spec: &RunSpec,
    config: &IngestConfig,
    line: usize,
) -> Result<LineIngest, CoreError> {
    let mut recorder = PolicyRecorder::new(RecordPolicy::MetricsOnly, spec.reduction_plan());
    let (tail, _meter, wire) = spec.execute_wiretapped(&mut recorder)?;
    let (_, reduced) = recorder.finish();
    let mut session = MeterSession::new(line, *config);
    feed(&mut session, &wire, config.chunk_bytes);
    session.finish();
    Ok(LineIngest {
        line,
        stats: session.stats(),
        census: *session.census(),
        truth: reduced.health_census,
        frames_sent: tail.uart.frames_sent,
        last_health: session.last_health(),
        alerts: session.alerts().to_vec(),
    })
}

/// Feeds a captured wire into a session in `chunk_bytes` reads, polling
/// between offers so a [`DropPolicy::Backpressure`] queue always drains.
pub fn feed(session: &mut MeterSession, wire: &[u8], chunk_bytes: usize) {
    let chunk_bytes = chunk_bytes.max(1);
    for chunk in wire.chunks(chunk_bytes) {
        let mut rest = chunk;
        loop {
            let consumed = session.offer(rest);
            session.poll();
            rest = &rest[consumed..];
            if rest.is_empty() {
                break;
            }
        }
    }
}

/// Ingests every line of a fleet across `jobs` worker threads and merges
/// the results in line order — bit-identical at any `jobs`, exactly the
/// fleet engine's contract.
///
/// # Errors
///
/// Returns the first per-line [`CoreError`] in line order, or
/// [`CoreError::Config`] for an invalid fleet spec.
pub fn ingest_fleet(
    fleet: &FleetSpec,
    config: &IngestConfig,
    jobs: usize,
) -> Result<IngestReport, CoreError> {
    fleet.validate().map_err(|_| CoreError::Config {
        reason: "invalid fleet spec for ingest",
    })?;
    let lines: Vec<usize> = (0..fleet.lines).collect();
    let results =
        exec::parallel_map_indexed(&lines, jobs, |_, &line| ingest_line(fleet, config, line));
    let mut report = IngestReport {
        lines: fleet.lines,
        stats: IngestStats::default(),
        census: HealthCensus::default(),
        truth: HealthCensus::default(),
        frames_sent: 0,
        lines_silent: 0,
        fidelity: Fidelity::default(),
        sample_alerts: Vec::new(),
    };
    for result in results {
        let line = result?;
        absorb(&mut report, &line, config.alert_capacity);
    }
    Ok(report)
}

/// Folds one line's ingest into a report (line-order merge step).
pub fn absorb(report: &mut IngestReport, line: &LineIngest, alert_capacity: usize) {
    report.stats.merge(&line.stats);
    report.census.merge(&line.census);
    report.truth.merge(&line.truth);
    report.frames_sent += line.frames_sent;
    if line.stats.records.records == 0 {
        report.lines_silent += 1;
    }
    report.fidelity.score(&line.census, &line.truth);
    for alert in &line.alerts {
        if report.sample_alerts.len() >= alert_capacity {
            break;
        }
        report.sample_alerts.push(*alert);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotwire_core::direction::FlowDirection;

    fn record(tick: u32, health: HealthState) -> TelemetryRecord {
        TelemetryRecord {
            velocity_centi_cm_s: 1000,
            direction: FlowDirection::Forward,
            bubble: false,
            fouling: health != HealthState::Healthy,
            saturated: false,
            health,
            conductance_nw_per_k: 2_000_000,
            tick,
        }
    }

    fn wire_of(records: &[TelemetryRecord]) -> Vec<u8> {
        let mut wire = Vec::new();
        for r in records {
            wire.extend(r.to_frame().unwrap());
        }
        wire
    }

    fn session_config() -> IngestConfig {
        IngestConfig {
            nominal_tick_gap: 10,
            ..IngestConfig::default()
        }
    }

    #[test]
    fn session_derives_census_and_transitions() {
        let wire = wire_of(&[
            record(0, HealthState::Healthy),
            record(10, HealthState::Healthy),
            record(20, HealthState::Degraded),
            record(30, HealthState::Degraded),
            record(40, HealthState::Healthy),
        ]);
        let mut s = MeterSession::new(3, session_config());
        feed(&mut s, &wire, 7);
        s.finish();
        let stats = s.stats();
        assert_eq!(stats.records.records, 5);
        assert_eq!(s.census().count(HealthState::Healthy), 3);
        assert_eq!(s.census().count(HealthState::Degraded), 2);
        assert_eq!(stats.health_transitions, 2);
        assert_eq!(stats.flags.fouling, 2);
        assert_eq!(s.last_health(), Some(HealthState::Healthy));
        assert_eq!(
            s.alerts()
                .iter()
                .filter(|a| matches!(a.kind, AlertKind::HealthChanged { .. }))
                .count(),
            2
        );
        assert!(s.alerts().iter().all(|a| a.line == 3));
    }

    #[test]
    fn session_detects_tick_gaps_and_estimates_loss() {
        // Ticks 0, 10, then 50: three records (20, 30, 40) went missing.
        let wire = wire_of(&[
            record(0, HealthState::Healthy),
            record(10, HealthState::Healthy),
            record(50, HealthState::Healthy),
        ]);
        let mut s = MeterSession::new(0, session_config());
        feed(&mut s, &wire, 64);
        s.finish();
        let stats = s.stats();
        assert_eq!(stats.tick_gaps, 1);
        assert_eq!(stats.records_lost, 3);
        assert_eq!(
            s.alerts().iter().find_map(|a| match a.kind {
                AlertKind::TickGap { missed } => Some(missed),
                _ => None,
            }),
            Some(3)
        );
    }

    #[test]
    fn session_learns_cadence_when_unconfigured() {
        let wire = wire_of(&[
            record(100, HealthState::Healthy),
            record(120, HealthState::Healthy), // learns cadence = 20
            record(180, HealthState::Healthy), // gap 60 = 2 missed
        ]);
        let mut s = MeterSession::new(
            0,
            IngestConfig {
                nominal_tick_gap: 0,
                ..IngestConfig::default()
            },
        );
        feed(&mut s, &wire, 64);
        s.finish();
        assert_eq!(s.stats().records_lost, 2);
    }

    #[test]
    fn malformed_frames_are_counted_and_alerted() {
        let mut wire = wire_of(&[record(0, HealthState::Healthy)]);
        let mut bad = record(10, HealthState::Healthy).to_bytes();
        bad[0] = 99; // unknown version, CRC still valid after re-framing
        wire.extend(hotwire_isif::uart::encode_frame(&bad).unwrap());
        let mut s = MeterSession::new(0, session_config());
        feed(&mut s, &wire, 64);
        s.finish();
        let stats = s.stats();
        assert_eq!(stats.records.records, 1);
        assert_eq!(stats.records.unknown_version, 1);
        assert!(s
            .alerts()
            .iter()
            .any(|a| matches!(a.kind, AlertKind::Malformed)));
    }

    #[test]
    fn backpressure_defers_and_loses_nothing() {
        let records: Vec<TelemetryRecord> = (0..40)
            .map(|i| record(i * 10, HealthState::Healthy))
            .collect();
        let wire = wire_of(&records);
        let mut s = MeterSession::new(
            0,
            IngestConfig {
                queue_capacity: 16, // smaller than one chunk
                chunk_bytes: 64,
                nominal_tick_gap: 10,
                ..IngestConfig::default()
            },
        );
        feed(&mut s, &wire, 64);
        s.finish();
        let stats = s.stats();
        assert_eq!(
            stats.records.records, 40,
            "backpressure must not lose bytes"
        );
        assert_eq!(stats.bytes_dropped, 0);
        assert!(
            stats.bytes_deferred > 0,
            "the tiny queue must have pushed back"
        );
        assert_eq!(stats.records_lost, 0);
    }

    #[test]
    fn drop_oldest_sheds_head_bytes_under_overflow() {
        let records: Vec<TelemetryRecord> = (0..8)
            .map(|i| record(i * 10, HealthState::Healthy))
            .collect();
        let wire = wire_of(&records);
        let mut s = MeterSession::new(
            0,
            IngestConfig {
                queue_capacity: 16,
                drop_policy: DropPolicy::DropOldest,
                nominal_tick_gap: 10,
                ..IngestConfig::default()
            },
        );
        // Offer everything in one go without polling: the 16-byte queue
        // must evict from the head.
        let consumed = s.offer(&wire);
        assert_eq!(consumed, wire.len());
        s.finish();
        let stats = s.stats();
        assert_eq!(stats.bytes_dropped, wire.len() as u64 - 16);
        assert!(stats.records.records <= 1);
    }

    #[test]
    fn drop_newest_sheds_tail_bytes_under_overflow() {
        let records: Vec<TelemetryRecord> = (0..8)
            .map(|i| record(i * 10, HealthState::Healthy))
            .collect();
        let wire = wire_of(&records);
        let mut s = MeterSession::new(
            0,
            IngestConfig {
                queue_capacity: 20, // exactly one frame
                drop_policy: DropPolicy::DropNewest,
                nominal_tick_gap: 10,
                ..IngestConfig::default()
            },
        );
        let consumed = s.offer(&wire);
        assert_eq!(consumed, wire.len(), "tail drop consumes everything");
        s.finish();
        let stats = s.stats();
        assert_eq!(stats.records.records, 1, "only the first frame fits");
        assert_eq!(stats.bytes_dropped, wire.len() as u64 - 20);
    }

    #[test]
    fn fidelity_scores_the_confusion_matrix() {
        let mut seen_bad = HealthCensus::default();
        seen_bad.record(HealthState::Degraded);
        let mut seen_ok = HealthCensus::default();
        seen_ok.record(HealthState::Healthy);
        let mut f = Fidelity::default();
        f.score(&seen_bad, &seen_bad); // TP
        f.score(&seen_ok, &seen_bad); // FN
        f.score(&seen_bad, &seen_ok); // FP
        f.score(&seen_ok, &seen_ok); // TN
        assert_eq!(
            (
                f.true_positives,
                f.false_negatives,
                f.false_positives,
                f.true_negatives
            ),
            (1, 1, 1, 1)
        );
        assert!((f.detection_accuracy() - 0.5).abs() < 1e-12);
        let mut g = Fidelity::default();
        g.merge(&f);
        g.merge(&f);
        assert_eq!(g.lines, 8);
    }
}
