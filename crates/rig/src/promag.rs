//! Behavioural model of the Endress+Hauser Promag 50 electromagnetic
//! reference meter.
//!
//! The paper's reference: "a commercial high resolution magnetic water meter
//! (Promag 50) … resolution lower than ±0.5 % respect to full scale".
//! Electromagnetic meters measure the Faraday voltage induced by the bulk
//! flow through a magnetic field: direction-sensitive, no moving parts, no
//! profile dependence (electrode geometry averages the profile), with a
//! low-flow cutoff and a ~10 Hz internal update rate.

use hotwire_physics::stochastic::gaussian;
use hotwire_units::{MetersPerSecond, Seconds};
use rand::Rng;

/// The Promag 50 behavioural model.
#[derive(Debug, Clone)]
pub struct Promag50 {
    /// Full-scale velocity.
    full_scale: MetersPerSecond,
    /// RMS noise as a fraction of full scale.
    noise_fs: f64,
    /// Low-flow cutoff (readings below this clamp to zero).
    cutoff: MetersPerSecond,
    /// Internal update period.
    update_period: Seconds,
    /// Time since the last update.
    since_update: f64,
    /// Latest held reading.
    reading: MetersPerSecond,
}

impl Promag50 {
    /// A Promag 50 spanning the paper's 0–250 cm/s line, with ±0.25 % FS rms
    /// noise (comfortably inside the "< ±0.5 % FS" datasheet bound) and a
    /// 1 cm/s low-flow cutoff.
    pub fn new(full_scale: MetersPerSecond) -> Self {
        Promag50 {
            full_scale,
            noise_fs: 0.0025,
            cutoff: MetersPerSecond::from_cm_per_s(1.0),
            update_period: Seconds::from_millis(100.0),
            since_update: f64::INFINITY, // update immediately on first step
            reading: MetersPerSecond::ZERO,
        }
    }

    /// Full-scale setting.
    #[inline]
    pub fn full_scale(&self) -> MetersPerSecond {
        self.full_scale
    }

    /// Datasheet-style resolution: ±noise, % of full scale.
    pub fn resolution_percent_fs(&self) -> f64 {
        self.noise_fs * 100.0
    }

    /// Advances the meter by `dt` with the true *bulk* velocity and returns
    /// the current (held) reading.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        dt: Seconds,
        bulk: MetersPerSecond,
        rng: &mut R,
    ) -> MetersPerSecond {
        self.since_update += dt.get();
        if self.since_update >= self.update_period.get() {
            self.since_update = 0.0;
            let noise = gaussian(rng, self.noise_fs * self.full_scale.get());
            let noisy = bulk.get() + noise;
            self.reading = if noisy.abs() < self.cutoff.get() {
                MetersPerSecond::ZERO
            } else {
                MetersPerSecond::new(noisy)
            };
        }
        self.reading
    }

    /// The latest held reading.
    #[inline]
    pub fn reading(&self) -> MetersPerSecond {
        self.reading
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x9A)
    }

    fn meter() -> Promag50 {
        Promag50::new(MetersPerSecond::from_cm_per_s(250.0))
    }

    #[test]
    fn mean_reading_is_unbiased() {
        let mut m = meter();
        let mut r = rng();
        let dt = Seconds::from_millis(100.0);
        let truth = MetersPerSecond::from_cm_per_s(123.0);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| m.step(dt, truth, &mut r).get()).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - truth.get()).abs() < 0.005,
            "mean {mean} vs {}",
            truth.get()
        );
    }

    #[test]
    fn noise_within_datasheet_bound() {
        let mut m = meter();
        let mut r = rng();
        let dt = Seconds::from_millis(100.0);
        let truth = MetersPerSecond::from_cm_per_s(123.0);
        let n = 20_000;
        let readings: Vec<f64> = (0..n).map(|_| m.step(dt, truth, &mut r).get()).collect();
        let mean = readings.iter().sum::<f64>() / n as f64;
        let sd = (readings.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        let pct_fs = sd / m.full_scale().get() * 100.0;
        assert!(pct_fs < 0.5, "noise {pct_fs} % FS exceeds datasheet");
        assert!(pct_fs > 0.05, "noise {pct_fs} % FS implausibly clean");
    }

    #[test]
    fn reading_held_between_updates() {
        let mut m = meter();
        let mut r = rng();
        let truth = MetersPerSecond::from_cm_per_s(100.0);
        let first = m.step(Seconds::from_millis(1.0), truth, &mut r);
        // 50 ms later, still inside the 100 ms update window.
        let held = m.step(Seconds::from_millis(50.0), truth, &mut r);
        assert_eq!(first, held);
    }

    #[test]
    fn low_flow_cutoff() {
        let mut m = meter();
        let mut r = rng();
        let dt = Seconds::from_millis(100.0);
        for _ in 0..100 {
            let reading = m.step(dt, MetersPerSecond::from_cm_per_s(0.1), &mut r);
            assert!(
                reading.get() == 0.0 || reading.get().abs() >= 0.01,
                "reading {reading} inside the cutoff band"
            );
        }
    }

    #[test]
    fn direction_sensitive() {
        let mut m = meter();
        let mut r = rng();
        let dt = Seconds::from_millis(100.0);
        let reading = m.step(dt, MetersPerSecond::from_cm_per_s(-150.0), &mut r);
        assert!(reading.get() < -1.0);
    }
}
