//! Measurement metrics matching the paper's §5 definitions.
//!
//! * **resolution** — the ± spread (reported as one standard deviation
//!   doubled… the paper quotes ±; we report `±σ`) of the conditioned output
//!   at a steady operating point;
//! * **repeatability** — the half-spread of settled means across repeated
//!   visits to the same setpoint, as % of full scale;
//! * **linearity** — worst deviation from the least-squares line through
//!   (true, measured), as % of full scale;
//! * **response time** — 10 %→90 % rise time through a step.

/// Streaming mean/σ accumulator (Welford's algorithm).
///
/// The allocation-free path for windowed sweep statistics: campaign runs
/// fold their settled windows through this instead of materializing a
/// per-window `Vec<f64>` copy of the trace. Matches [`mean`] / [`std_dev`]
/// (population σ) to floating-point accuracy; the degenerate-input
/// conventions (empty → `NaN`, singleton σ → 0) are identical.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the samples (`NaN` for an empty accumulator — an empty
    /// window has no mean, and pretending it is 0 poisons downstream
    /// error metrics with a plausible-looking number).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        self.mean
    }

    /// Population variance (`NaN` when empty, 0 for a single sample).
    pub fn variance(&self) -> f64 {
        match self.n {
            0 => f64::NAN,
            1 => 0.0,
            n => self.m2 / n as f64,
        }
    }

    /// Population standard deviation (`NaN` when empty, 0 for a single
    /// sample).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

/// Mean of a slice (`NaN` for empty input — see [`Welford::mean`]).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice (`NaN` when empty, 0 for a
/// single sample — a lone reading has no spread, but *no* readings have no
/// statistic at all, and 0 would read as a perfect instrument).
pub fn std_dev(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => f64::NAN,
        1 => 0.0,
        n => {
            let m = mean(xs);
            (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64).sqrt()
        }
    }
}

/// Resolution at a steady point: ±σ of the samples, in the samples' unit
/// (`NaN` for an empty window).
pub fn resolution(samples: &[f64]) -> f64 {
    std_dev(samples)
}

/// Repeatability across revisits: half the spread of the settled means,
/// as a fraction of `full_scale`.
///
/// `NaN` for fewer than two visits or a non-positive full scale — both are
/// measurement mistakes, and the old `0.0` convention reported them as a
/// perfect instrument. `repro --json` renders the `NaN` as `null`.
pub fn repeatability(settled_means: &[f64], full_scale: f64) -> f64 {
    if settled_means.len() < 2 || full_scale <= 0.0 {
        return f64::NAN;
    }
    let max = settled_means
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let min = settled_means.iter().cloned().fold(f64::INFINITY, f64::min);
    (max - min) / 2.0 / full_scale
}

/// Worst absolute deviation from the least-squares line through
/// `(truth, measured)` pairs, as a fraction of `full_scale`.
pub fn linearity(pairs: &[(f64, f64)], full_scale: f64) -> f64 {
    if pairs.len() < 3 || full_scale <= 0.0 {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let sx: f64 = pairs.iter().map(|p| p.0).sum();
    let sy: f64 = pairs.iter().map(|p| p.1).sum();
    let sxx: f64 = pairs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pairs.iter().map(|p| p.0 * p.1).sum();
    let det = n * sxx - sx * sx;
    if det.abs() < 1e-18 {
        return 0.0;
    }
    let slope = (n * sxy - sx * sy) / det;
    let intercept = (sy * sxx - sx * sxy) / det;
    pairs
        .iter()
        .map(|&(x, y)| (y - (slope * x + intercept)).abs())
        .fold(0.0, f64::max)
        / full_scale
}

/// 10 %→90 % rise time through a step, given `(t, y)` samples, the level
/// before the step and the final level. Returns `None` if the trace never
/// crosses both thresholds (or is empty).
///
/// The 10 % time is the *final entry* into the crossed region — the time
/// after the last sample still on the wrong side. Plain first-crossing
/// search (the old implementation) is wrong on noisy traces: a pre-step
/// spike that touches the 90 % level also touches the 10 % level at the
/// same sample, so both "first crossings" land on the spike and the rise
/// time collapses to ~0. Final entry anchors on the departure that
/// actually *holds* — settled traces sit ~100 % away from the 10 % level,
/// so ordinary noise cannot move it.
///
/// The 90 % time is then the *first* crossing at or after the 10 % time.
/// Final entry would be wrong there for the mirrored reason: settled noise
/// rides right on the 90 % level, and any late dip would push the "final
/// entry" out and inflate the measurement (noisier configurations would
/// absurdly report *slower* responses than clean ones). For a clean
/// monotonic step all the definitions agree.
pub fn rise_time(samples: &[(f64, f64)], from: f64, to: f64) -> Option<f64> {
    rise_time_impl(samples.len(), |i| samples[i].0, |i| samples[i].1, from, to)
}

/// [`rise_time`] over split time/value slices — the zero-copy entry point
/// for columnar stores and streaming series reducers, which hold `t` and
/// `y` in separate columns. Identical semantics (one shared
/// implementation); the pair-slice form exists for callers that already
/// have `(t, y)` tuples.
///
/// # Panics
///
/// Panics if `ts` and `ys` differ in length.
pub fn rise_time_split(ts: &[f64], ys: &[f64], from: f64, to: f64) -> Option<f64> {
    assert_eq!(
        ts.len(),
        ys.len(),
        "rise_time_split: time/value columns differ in length"
    );
    rise_time_impl(ts.len(), |i| ts[i], |i| ys[i], from, to)
}

/// Shared spike-robust rise-time search over indexed accessors.
fn rise_time_impl(
    n: usize,
    t_at: impl Fn(usize) -> f64,
    y_at: impl Fn(usize) -> f64,
    from: f64,
    to: f64,
) -> Option<f64> {
    let lo = from + 0.1 * (to - from);
    let hi = from + 0.9 * (to - from);
    let rising = to > from;
    let crossed = |y: f64, level: f64| if rising { y >= level } else { y <= level };
    // Final entry into the region beyond `lo`: the sample after the last
    // one still outside it. `None` if the trace never ends up inside
    // (i.e. the level is never crossed durably).
    let t_lo = match (0..n).rev().find(|&i| !crossed(y_at(i), lo)) {
        Some(i) => (i + 1 < n).then(|| t_at(i + 1)),
        // Every sample is already beyond the level: entry at the start.
        None => (n > 0).then(|| t_at(0)),
    }?;
    let t_hi = (0..n)
        .find(|&i| t_at(i) >= t_lo && crossed(y_at(i), hi))
        .map(t_at)?;
    Some(t_hi - t_lo)
}

/// Hysteresis: worst absolute difference between the settled means measured
/// at the *same* true level on the way up vs. the way down, as a fraction of
/// `full_scale`. Input: `(true_level, settled_mean)` pairs from each
/// direction of the staircase.
pub fn hysteresis(up: &[(f64, f64)], down: &[(f64, f64)], full_scale: f64) -> f64 {
    if full_scale <= 0.0 {
        return 0.0;
    }
    let mut worst = 0.0f64;
    for &(lu, mu) in up {
        for &(ld, md) in down {
            if (lu - ld).abs() < 1e-9 {
                worst = worst.max((mu - md).abs());
            }
        }
    }
    worst / full_scale
}

/// Root-mean-square error between measured and reference series (pairwise).
///
/// `NaN` for empty input, matching the crate's empty⇒NaN convention
/// ([`mean`], [`std_dev`], [`Welford::mean`]): no comparison happened, and
/// the old `0.0` read as a *perfect* agreement. `repro --json` renders the
/// `NaN` as `null`.
pub fn rms_error(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return f64::NAN;
    }
    (pairs.iter().map(|&(a, b)| (a - b).powi(2)).sum::<f64>() / pairs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_slice_paths() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let w: Welford = xs.iter().copied().collect();
        assert_eq!(w.count(), xs.len() as u64);
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-12);
        // Degenerate-input conventions match.
        assert!(Welford::new().mean().is_nan());
        assert!(Welford::new().std_dev().is_nan());
        let one: Welford = [3.5].into_iter().collect();
        assert_eq!(one.mean(), 3.5);
        assert_eq!(one.std_dev(), 0.0);
    }

    mod welford_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn welford_matches_two_pass(
                xs in proptest::collection::vec(-1.0e3f64..1.0e3, 0..200)
            ) {
                let w: Welford = xs.iter().copied().collect();
                if xs.is_empty() {
                    prop_assert!(w.mean().is_nan() && mean(&xs).is_nan());
                    prop_assert!(w.std_dev().is_nan() && std_dev(&xs).is_nan());
                } else {
                    prop_assert!((w.mean() - mean(&xs)).abs() < 1e-9);
                    prop_assert!((w.std_dev() - std_dev(&xs)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        // Regression: empty windows used to read as perfect (0).
        assert!(mean(&[]).is_nan());
        assert!(std_dev(&[]).is_nan());
        assert!(resolution(&[]).is_nan());
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn repeatability_is_half_spread() {
        let means = [99.0, 101.0, 100.0, 100.5];
        assert!((repeatability(&means, 250.0) - 1.0 / 250.0).abs() < 1e-12);
        // Regression: a single visit / bad full scale used to report 0.0,
        // i.e. a *perfect* instrument, instead of "not a measurement".
        assert!(repeatability(&[100.0], 250.0).is_nan());
        assert!(repeatability(&means, 0.0).is_nan());
        assert!(repeatability(&means, -1.0).is_nan());
    }

    #[test]
    fn linearity_of_perfect_line_is_zero() {
        let pairs: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        assert!(linearity(&pairs, 100.0) < 1e-12);
    }

    #[test]
    fn linearity_detects_bow() {
        let pairs: Vec<(f64, f64)> = (0..11)
            .map(|i| {
                let x = i as f64 * 25.0;
                (x, x + 0.0002 * x * (250.0 - x)) // parabola, max +3.1 at mid
            })
            .collect();
        let lin = linearity(&pairs, 250.0);
        assert!(lin > 0.005 && lin < 0.02, "linearity {lin}");
    }

    #[test]
    fn rise_time_of_exponential() {
        // y = 1 − e^(−t): 10 % at 0.105, 90 % at 2.303 → rise ≈ 2.197.
        let samples: Vec<(f64, f64)> = (0..10_000)
            .map(|i| {
                let t = i as f64 * 1e-3;
                (t, 1.0 - (-t).exp())
            })
            .collect();
        let rt = rise_time(&samples, 0.0, 1.0).unwrap();
        assert!((rt - 2.197).abs() < 0.01, "rise {rt}");
    }

    #[test]
    fn rise_time_falling_step() {
        let samples: Vec<(f64, f64)> = (0..10_000)
            .map(|i| {
                let t = i as f64 * 1e-3;
                (t, (-t).exp())
            })
            .collect();
        let rt = rise_time(&samples, 1.0, 0.0).unwrap();
        assert!((rt - 2.197).abs() < 0.01, "fall {rt}");
    }

    #[test]
    fn rise_time_none_when_never_crossing() {
        let samples = [(0.0, 0.0), (1.0, 0.05)];
        assert!(rise_time(&samples, 0.0, 1.0).is_none());
        assert!(rise_time(&[], 0.0, 1.0).is_none());
    }

    mod rise_time_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn split_agrees_with_pairs(
                ys in proptest::collection::vec(-0.5f64..1.5, 0..300),
                from in -0.2f64..0.2,
                to in 0.8f64..1.2
            ) {
                // Same data through both entry points: the split form must
                // agree with the pair form bit-for-bit, spikes and all.
                let ts: Vec<f64> = (0..ys.len()).map(|i| i as f64 * 1e-2).collect();
                let pairs: Vec<(f64, f64)> =
                    ts.iter().copied().zip(ys.iter().copied()).collect();
                let a = rise_time(&pairs, from, to);
                let b = rise_time_split(&ts, &ys, from, to);
                prop_assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
            }
        }
    }

    #[test]
    fn rise_time_split_keeps_spike_robust_semantics() {
        // The split entry point shares the final-entry / first-crossing
        // search — re-run the pre-step-spike regression through it.
        let mut ts = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10_000 {
            let t = i as f64 * 1e-3;
            ts.push(t);
            ys.push(if t < 0.05 {
                0.0
            } else {
                1.0 - (-(t - 0.05)).exp()
            });
        }
        ys[20] = 0.95; // spike at t = 0.02, before the step
        let rt = rise_time_split(&ts, &ys, 0.0, 1.0).unwrap();
        assert!((rt - 2.197).abs() < 0.01, "spiky split rise {rt}");
    }

    #[test]
    #[should_panic(expected = "columns differ in length")]
    fn rise_time_split_rejects_mismatched_columns() {
        rise_time_split(&[0.0, 1.0], &[0.0], 0.0, 1.0);
    }

    #[test]
    fn rise_time_ignores_pre_step_spike() {
        // Exponential step with a single pre-step noise spike that shoots
        // past the 90 % level. First-crossing search put both thresholds on
        // the spike → rise ≈ 0; the final-entry definition recovers the
        // true ≈ 2.197 s transition.
        let mut samples: Vec<(f64, f64)> = (0..10_000)
            .map(|i| {
                let t = i as f64 * 1e-3;
                (
                    t,
                    if t < 0.05 {
                        0.0
                    } else {
                        1.0 - (-(t - 0.05)).exp()
                    },
                )
            })
            .collect();
        samples[20].1 = 0.95; // spike at t = 0.02, before the step
        let rt = rise_time(&samples, 0.0, 1.0).unwrap();
        assert!((rt - 2.197).abs() < 0.01, "spiky rise {rt}");
    }

    #[test]
    fn rise_time_ignores_mid_level_spike() {
        // A spike that only reaches mid-level (crosses lo, not hi) used to
        // pull t_lo early and overstate the rise time.
        let mut samples: Vec<(f64, f64)> = (0..10_000)
            .map(|i| {
                let t = i as f64 * 1e-3;
                (
                    t,
                    if t < 1.0 {
                        0.0
                    } else {
                        1.0 - (-(t - 1.0)).exp()
                    },
                )
            })
            .collect();
        samples[100].1 = 0.5; // spike at t = 0.1, 0.9 s before the step
        let rt = rise_time(&samples, 0.0, 1.0).unwrap();
        assert!((rt - 2.197).abs() < 0.01, "mid-spike rise {rt}");
    }

    #[test]
    fn rise_time_tolerates_settling_noise_at_the_high_threshold() {
        // Settled output noise rides on the 90 % level; late dips below it
        // must not push the measurement out (a final-entry search at the
        // high threshold would report ≈ 7.8 s here instead of ≈ 2.197 s,
        // making noisier traces look *slower*).
        let mut samples: Vec<(f64, f64)> = (0..10_000)
            .map(|i| {
                let t = i as f64 * 1e-3;
                (t, 1.0 - (-t).exp())
            })
            .collect();
        samples[7_800].1 = 0.88; // noise dip at t = 7.8, long after settling
        let rt = rise_time(&samples, 0.0, 1.0).unwrap();
        assert!((rt - 2.197).abs() < 0.01, "noisy-settle rise {rt}");
    }

    #[test]
    fn hysteresis_matched_levels_only() {
        let up = [(50.0, 51.0), (100.0, 101.0), (150.0, 149.0)];
        let down = [(150.0, 150.5), (100.0, 99.0), (50.0, 50.2)];
        // Worst matched-level gap: |101 − 99| = 2 at level 100.
        let h = hysteresis(&up, &down, 250.0);
        assert!((h - 2.0 / 250.0).abs() < 1e-12);
        assert_eq!(hysteresis(&up, &[(75.0, 75.0)], 250.0), 0.0);
        assert_eq!(hysteresis(&up, &down, 0.0), 0.0);
    }

    #[test]
    fn rms_error_basic() {
        assert_eq!(rms_error(&[(1.0, 1.0), (2.0, 2.0)]), 0.0);
        assert!((rms_error(&[(0.0, 3.0), (0.0, 4.0)]) - 3.5355).abs() < 1e-3);
        // Regression: empty input used to score as perfect agreement (0.0).
        assert!(rms_error(&[]).is_nan());
    }
}
