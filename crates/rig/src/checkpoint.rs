//! Durable fleet checkpoints: serialize a [`ShardAggregates`] mid-run so
//! a killed fleet resumes where it stopped and finishes **bit-identical**
//! to an uninterrupted run.
//!
//! # Why this is small
//!
//! Line `i`'s spec — seeds, jitter, faults — is a pure function of the
//! [`FleetSpec`](crate::fleet::FleetSpec) and `i`, so no mid-line meter
//! state ever needs serializing. A checkpoint is just the merged prefix:
//! the accumulator's counters, the two quantile sketches, the settled-mean
//! extrema, the fault incidence map, and (for small fleets on the exact
//! path) the retained [`LineSummary`]s. Resume
//! = load, verify, continue from `shard.end`.
//!
//! # Safety rails
//!
//! * The file stores [`FleetSpec::fingerprint`](crate::fleet::FleetSpec::fingerprint)
//!   and the total line count; a resume under a *different* spec is
//!   refused with [`CheckpointError::SpecMismatch`] instead of silently
//!   stitching two unrelated fleets together.
//! * Writes go through a temp file + atomic rename, so a kill mid-write
//!   leaves the previous checkpoint intact rather than a torn file.
//! * Every `f64` crosses the file as its exact IEEE-754 bit pattern
//!   (`to_bits` hex) — round-tripping is lossless by construction, which
//!   is what the bit-identity contract requires.
//!
//! The format is a versioned line-oriented text codec (the repo's
//! `serde` is a masquerade marker, so the codec is hand-rolled like the
//! trace CSV sink): human-greppable, diff-friendly, no dependencies.

use std::fmt::Write as _;
use std::path::Path;

use crate::fault::FaultKind;
use crate::fleet::{LineSummary, ShardAggregates};
use crate::maintain::MaintenanceCounters;
use crate::record::HealthCensus;
use crate::sketch::QuantileSketch;

/// Codec version written to (and required from) every checkpoint file.
/// v2 added the maintenance-counter totals line and the four per-line
/// counter fields in each summary record.
pub const FORMAT_VERSION: u32 = 2;

/// Why a checkpoint could not be written, read, or adopted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io {
        /// The offending path.
        path: String,
        /// The OS error rendering.
        reason: String,
    },
    /// The file's contents did not parse as a checkpoint.
    Parse {
        /// 1-based line number of the offending line (0 = structural).
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The checkpoint belongs to a different fleet spec.
    SpecMismatch {
        /// Fingerprint of the spec trying to resume.
        expected: u64,
        /// Fingerprint stored in the checkpoint.
        found: u64,
    },
    /// The checkpoint's total line count disagrees with the spec's.
    WrongLineCount {
        /// Lines in the spec trying to resume.
        expected: usize,
        /// Lines stored in the checkpoint.
        found: usize,
    },
    /// The file declares a codec version this build does not speak.
    UnsupportedVersion(u32),
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointError::Io { path, reason } => {
                write!(f, "checkpoint io at {path}: {reason}")
            }
            CheckpointError::Parse { line, reason } => {
                write!(f, "checkpoint parse error at line {line}: {reason}")
            }
            CheckpointError::SpecMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different fleet spec \
                 (expected fingerprint {expected:016x}, file has {found:016x})"
            ),
            CheckpointError::WrongLineCount { expected, found } => write!(
                f,
                "checkpoint fleet has {found} lines, resuming spec has {expected}"
            ),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "checkpoint format v{v} is not supported (this build speaks v{FORMAT_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A fleet run's durable progress: the merged prefix accumulator plus
/// enough identity to refuse a resume under the wrong spec.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCheckpoint {
    /// Codec version ([`FORMAT_VERSION`] when written by this build).
    pub version: u32,
    /// [`FleetSpec::fingerprint`](crate::fleet::FleetSpec::fingerprint)
    /// of the owning spec.
    pub fingerprint: u64,
    /// Total lines in the owning fleet (so "finished" is recognizable).
    pub total_lines: usize,
    /// The merged prefix: lines `[shard.start, shard.end)` completed.
    pub shard: ShardAggregates,
}

impl FleetCheckpoint {
    /// Packages a prefix accumulator for writing.
    pub fn new(fingerprint: u64, total_lines: usize, shard: ShardAggregates) -> Self {
        FleetCheckpoint {
            version: FORMAT_VERSION,
            fingerprint,
            total_lines,
            shard,
        }
    }

    /// Verifies the checkpoint against the resuming spec and surrenders
    /// its accumulator.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::SpecMismatch`] / [`CheckpointError::WrongLineCount`]
    /// when the checkpoint was written by a different spec.
    pub fn into_verified_shard(
        self,
        fingerprint: u64,
        total_lines: usize,
    ) -> Result<ShardAggregates, CheckpointError> {
        if self.fingerprint != fingerprint {
            return Err(CheckpointError::SpecMismatch {
                expected: fingerprint,
                found: self.fingerprint,
            });
        }
        if self.total_lines != total_lines {
            return Err(CheckpointError::WrongLineCount {
                expected: total_lines,
                found: self.total_lines,
            });
        }
        Ok(self.shard)
    }

    /// Writes the checkpoint to `path` atomically (temp file in the same
    /// directory, then rename) so a kill mid-write never tears an
    /// existing checkpoint.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure.
    pub fn write(&self, path: &Path) -> Result<(), CheckpointError> {
        let io = |e: std::io::Error| CheckpointError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.encode()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Loads a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when unreadable, [`CheckpointError::Parse`]
    /// / [`CheckpointError::UnsupportedVersion`] when malformed.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        Self::decode(&text)
    }

    /// [`FleetCheckpoint::load`], treating a missing file as `None`
    /// (fresh start) rather than an error.
    ///
    /// # Errors
    ///
    /// Everything [`FleetCheckpoint::load`] returns except not-found.
    pub fn load_if_present(path: &Path) -> Result<Option<Self>, CheckpointError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::decode(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(CheckpointError::Io {
                path: path.display().to_string(),
                reason: e.to_string(),
            }),
        }
    }

    /// Renders the checkpoint as the v2 line-oriented text format.
    pub fn encode(&self) -> String {
        let s = &self.shard;
        let mut out = String::new();
        let _ = writeln!(out, "hotwire-fleet-checkpoint v{}", self.version);
        let _ = writeln!(out, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(out, "total_lines {}", self.total_lines);
        let _ = writeln!(out, "range {} {}", s.start, s.end);
        let _ = writeln!(
            out,
            "samples {} {} {} {}",
            s.total_samples, s.fault_samples, s.lines_faulted, s.trace_heap_bytes
        );
        let h = s.health.counts;
        let _ = writeln!(out, "health {} {} {} {}", h[0], h[1], h[2], h[3]);
        let _ = writeln!(
            out,
            "means {:016x} {:016x}",
            s.settled_mean_min.to_bits(),
            s.settled_mean_max.to_bits()
        );
        let m = &s.maintenance;
        let _ = writeln!(
            out,
            "maintenance {} {} {} {}",
            m.re_zeros, m.refits, m.persists, m.persists_skipped
        );
        let _ = writeln!(out, "incidence {}", s.fault_incidence.len());
        for (kind, count) in &s.fault_incidence {
            let _ = writeln!(out, "{kind} {count}");
        }
        let _ = writeln!(out, "resolution_sketch {}", s.resolution_pct_fs.encode());
        let _ = writeln!(out, "err_sketch {}", s.err_rms_cm_s.encode());
        let _ = writeln!(out, "summaries {}", s.summaries.len());
        for line in &s.summaries {
            let kinds = if line.fault_kinds.is_empty() {
                "-".to_string()
            } else {
                line.fault_kinds.join(",")
            };
            let lh = line.health.counts;
            let lm = &line.maintenance;
            let _ = writeln!(
                out,
                "{} {} {:016x} {:016x} {:016x} {:016x} {} {} {} {} {} {} {:016x} {} {} {} {} {}",
                line.line,
                line.samples,
                line.settled_mean.to_bits(),
                line.settled_std.to_bits(),
                line.err_rms.to_bits(),
                line.err_max_abs.to_bits(),
                line.fault_samples,
                lh[0],
                lh[1],
                lh[2],
                lh[3],
                line.trace_heap_bytes,
                line.meter_digest,
                lm.re_zeros,
                lm.refits,
                lm.persists,
                lm.persists_skipped,
                kinds
            );
        }
        out.push_str("end\n");
        out
    }

    /// Parses the v2 text format.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Parse`] naming the first offending line;
    /// [`CheckpointError::UnsupportedVersion`] for a foreign version tag.
    pub fn decode(text: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines().enumerate();
        let mut next = |what: &str| -> Result<(usize, &str), CheckpointError> {
            lines
                .next()
                .map(|(i, l)| (i + 1, l))
                .ok_or_else(|| CheckpointError::Parse {
                    line: 0,
                    reason: format!("unexpected end of file, expected {what}"),
                })
        };
        let parse = |line: usize, what: &str, token: &str| -> Result<u64, CheckpointError> {
            token.parse::<u64>().map_err(|_| CheckpointError::Parse {
                line,
                reason: format!("bad {what}: {token:?}"),
            })
        };
        let parse_hex = |line: usize, what: &str, token: &str| -> Result<u64, CheckpointError> {
            u64::from_str_radix(token, 16).map_err(|_| CheckpointError::Parse {
                line,
                reason: format!("bad {what}: {token:?}"),
            })
        };
        // Fixed fields arrive as `keyword value...` lines in a fixed
        // order; `fields` peels the keyword and returns the payload.
        let fields = |line: usize,
                      text: &str,
                      keyword: &str,
                      arity: usize|
         -> Result<Vec<String>, CheckpointError> {
            let mut parts = text.split_whitespace();
            if parts.next() != Some(keyword) {
                return Err(CheckpointError::Parse {
                    line,
                    reason: format!("expected {keyword:?} line, got {text:?}"),
                });
            }
            let rest: Vec<String> = parts.map(str::to_string).collect();
            if rest.len() != arity {
                return Err(CheckpointError::Parse {
                    line,
                    reason: format!("{keyword:?} wants {arity} fields, got {}", rest.len()),
                });
            }
            Ok(rest)
        };

        let (n, header) = next("header")?;
        let version = header
            .strip_prefix("hotwire-fleet-checkpoint v")
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| CheckpointError::Parse {
                line: n,
                reason: format!("bad header: {header:?}"),
            })?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }

        let (n, l) = next("fingerprint")?;
        let fingerprint = parse_hex(n, "fingerprint", &fields(n, l, "fingerprint", 1)?[0])?;
        let (n, l) = next("total_lines")?;
        let total_lines = parse(n, "total_lines", &fields(n, l, "total_lines", 1)?[0])? as usize;
        let (n, l) = next("range")?;
        let range = fields(n, l, "range", 2)?;
        let start = parse(n, "range start", &range[0])? as usize;
        let end = parse(n, "range end", &range[1])? as usize;
        if start > end {
            return Err(CheckpointError::Parse {
                line: n,
                reason: format!("range {start}..{end} runs backwards"),
            });
        }

        let mut shard = ShardAggregates::empty(start);
        shard.end = end;

        let (n, l) = next("samples")?;
        let samples = fields(n, l, "samples", 4)?;
        shard.total_samples = parse(n, "total_samples", &samples[0])?;
        shard.fault_samples = parse(n, "fault_samples", &samples[1])?;
        shard.lines_faulted = parse(n, "lines_faulted", &samples[2])?;
        shard.trace_heap_bytes = parse(n, "trace_heap_bytes", &samples[3])? as usize;

        let (n, l) = next("health")?;
        let health = fields(n, l, "health", 4)?;
        for (slot, token) in shard.health.counts.iter_mut().zip(&health) {
            *slot = parse(n, "health count", token)?;
        }

        let (n, l) = next("means")?;
        let means = fields(n, l, "means", 2)?;
        shard.settled_mean_min = f64::from_bits(parse_hex(n, "mean min", &means[0])?);
        shard.settled_mean_max = f64::from_bits(parse_hex(n, "mean max", &means[1])?);

        let (n, l) = next("maintenance")?;
        let maint = fields(n, l, "maintenance", 4)?;
        shard.maintenance = MaintenanceCounters {
            re_zeros: parse(n, "re_zeros", &maint[0])?,
            refits: parse(n, "refits", &maint[1])?,
            persists: parse(n, "persists", &maint[2])?,
            persists_skipped: parse(n, "persists_skipped", &maint[3])?,
        };

        let (n, l) = next("incidence")?;
        let kinds = parse(n, "incidence count", &fields(n, l, "incidence", 1)?[0])? as usize;
        for _ in 0..kinds {
            let (n, l) = next("incidence entry")?;
            let mut parts = l.split_whitespace();
            let (Some(kind), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(CheckpointError::Parse {
                    line: n,
                    reason: format!("bad incidence entry: {l:?}"),
                });
            };
            shard
                .fault_incidence
                .insert(kind.to_string(), parse(n, "incidence count", count)?);
        }

        let mut sketch = |keyword: &str| -> Result<QuantileSketch, CheckpointError> {
            let (n, l) = next(keyword)?;
            let payload = l
                .strip_prefix(keyword)
                .map(str::trim_start)
                .ok_or_else(|| CheckpointError::Parse {
                    line: n,
                    reason: format!("expected {keyword:?} line, got {l:?}"),
                })?;
            QuantileSketch::decode(payload)
                .map_err(|reason| CheckpointError::Parse { line: n, reason })
        };
        shard.resolution_pct_fs = sketch("resolution_sketch")?;
        shard.err_rms_cm_s = sketch("err_sketch")?;

        let (n, l) = next("summaries")?;
        let count = parse(n, "summary count", &fields(n, l, "summaries", 1)?[0])? as usize;
        shard.summaries.reserve_exact(count);
        for _ in 0..count {
            let (n, l) = next("summary record")?;
            let tokens: Vec<&str> = l.split_whitespace().collect();
            if tokens.len() != 18 {
                return Err(CheckpointError::Parse {
                    line: n,
                    reason: format!("summary record wants 18 fields, got {}", tokens.len()),
                });
            }
            let fault_kinds = if tokens[17] == "-" {
                Vec::new()
            } else {
                tokens[17]
                    .split(',')
                    .map(|name| {
                        FaultKind::intern_name(name).ok_or_else(|| CheckpointError::Parse {
                            line: n,
                            reason: format!("unknown fault kind {name:?}"),
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?
            };
            shard.summaries.push(LineSummary {
                line: parse(n, "line index", tokens[0])? as usize,
                samples: parse(n, "samples", tokens[1])?,
                settled_mean: f64::from_bits(parse_hex(n, "settled_mean", tokens[2])?),
                settled_std: f64::from_bits(parse_hex(n, "settled_std", tokens[3])?),
                err_rms: f64::from_bits(parse_hex(n, "err_rms", tokens[4])?),
                err_max_abs: f64::from_bits(parse_hex(n, "err_max_abs", tokens[5])?),
                fault_samples: parse(n, "fault_samples", tokens[6])?,
                health: HealthCensus {
                    counts: [
                        parse(n, "health count", tokens[7])?,
                        parse(n, "health count", tokens[8])?,
                        parse(n, "health count", tokens[9])?,
                        parse(n, "health count", tokens[10])?,
                    ],
                },
                trace_heap_bytes: parse(n, "trace_heap_bytes", tokens[11])? as usize,
                meter_digest: parse_hex(n, "meter_digest", tokens[12])?,
                maintenance: MaintenanceCounters {
                    re_zeros: parse(n, "re_zeros", tokens[13])?,
                    refits: parse(n, "refits", tokens[14])?,
                    persists: parse(n, "persists", tokens[15])?,
                    persists_skipped: parse(n, "persists_skipped", tokens[16])?,
                },
                fault_kinds,
            });
        }

        let (n, l) = next("end")?;
        if l.trim() != "end" {
            return Err(CheckpointError::Parse {
                line: n,
                reason: format!("expected trailing \"end\", got {l:?}"),
            });
        }
        Ok(FleetCheckpoint {
            version,
            fingerprint,
            total_lines,
            shard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_shard(with_summaries: bool) -> ShardAggregates {
        let mut shard = ShardAggregates::empty(3);
        for (i, (mean, std, err)) in [
            (101.5, 0.42, 0.9),
            (99.8, 0.55, f64::NAN),
            (100.2, 0.39, 1.1),
        ]
        .into_iter()
        .enumerate()
        {
            let line = 3 + i;
            let summary = LineSummary {
                line,
                samples: 120,
                settled_mean: mean,
                settled_std: std,
                err_rms: err,
                err_max_abs: err * 2.0,
                fault_samples: u64::from(line == 4) * 17,
                health: HealthCensus {
                    counts: [100, 12, 8, 0],
                },
                fault_kinds: if line == 4 {
                    vec!["adc_stuck", "uart_corruption"]
                } else {
                    Vec::new()
                },
                trace_heap_bytes: 0,
                meter_digest: 0xDEAD_BEEF_0000_0000 + line as u64,
                maintenance: MaintenanceCounters {
                    re_zeros: i as u64,
                    refits: 2 * i as u64,
                    persists: u64::from(line == 4),
                    persists_skipped: u64::from(line == 5) * 3,
                },
            };
            shard.push(summary, 628.3, with_summaries);
        }
        shard
    }

    #[test]
    fn round_trips_bit_exactly() {
        for with_summaries in [true, false] {
            let shard = sample_shard(with_summaries);
            let ck = FleetCheckpoint::new(0xFEED_FACE_CAFE_F00D, 12, shard);
            let decoded = FleetCheckpoint::decode(&ck.encode()).unwrap();
            // Compare through Debug: NaN-bearing floats defeat PartialEq,
            // but the Debug rendering (and the to_bits hex on the wire)
            // is exact.
            assert_eq!(format!("{ck:?}"), format!("{decoded:?}"));
            assert_eq!(
                ck.shard.settled_mean_min.to_bits(),
                decoded.shard.settled_mean_min.to_bits()
            );
        }
    }

    #[test]
    fn write_and_load_are_inverse() {
        let dir = std::env::temp_dir().join("hotwire-ck-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.ck");
        let ck = FleetCheckpoint::new(1, 12, sample_shard(true));
        ck.write(&path).unwrap();
        let loaded = FleetCheckpoint::load(&path).unwrap();
        assert_eq!(format!("{ck:?}"), format!("{loaded:?}"));
        // Missing file is a fresh start, not an error.
        let missing = dir.join("never-written.ck");
        assert_eq!(FleetCheckpoint::load_if_present(&missing).unwrap(), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn verification_refuses_foreign_checkpoints() {
        let ck = FleetCheckpoint::new(7, 12, sample_shard(false));
        assert!(matches!(
            ck.clone().into_verified_shard(8, 12),
            Err(CheckpointError::SpecMismatch {
                expected: 8,
                found: 7
            })
        ));
        assert!(matches!(
            ck.clone().into_verified_shard(7, 24),
            Err(CheckpointError::WrongLineCount {
                expected: 24,
                found: 12
            })
        ));
        assert!(ck.into_verified_shard(7, 12).is_ok());
    }

    #[test]
    fn malformed_files_name_the_offending_line() {
        let ck = FleetCheckpoint::new(1, 12, sample_shard(true));
        let good = ck.encode();
        // Foreign version.
        let foreign = good.replacen("v2", "v9", 1);
        assert_eq!(
            FleetCheckpoint::decode(&foreign),
            Err(CheckpointError::UnsupportedVersion(9))
        );
        // Unknown fault kind in a summary record.
        let bad_kind = good.replace("adc_stuck,uart_corruption", "warp_core_breach");
        assert!(matches!(
            FleetCheckpoint::decode(&bad_kind),
            Err(CheckpointError::Parse { .. })
        ));
        // Truncation (torn write without the atomic rename).
        let torn = &good[..good.len() / 2];
        assert!(FleetCheckpoint::decode(torn).is_err());
        // Garbage.
        assert!(matches!(
            FleetCheckpoint::decode("not a checkpoint"),
            Err(CheckpointError::Parse { line: 1, .. })
        ));
    }
}
