//! The evaluation rig: the Vinci water-station measurement line in software.
//!
//! §5 of the paper: "The whole set-up consisted in a dedicated line for the
//! measurements, derived from conventional water lines, in which pressure
//! and water speed could be fine tuned. The line was also equipped with a
//! commercial high resolution magnetic water meter (Promag 50)…"
//!
//! * [`scenario`] — piecewise flow/pressure/temperature schedules (steps,
//!   ramps, staircases, pressure peaks)
//! * [`mod@line`] — the measurement line: schedules + pipe profile + turbulence
//!   → the instantaneous [`SensorEnvironment`] at the probe
//! * [`promag`] — behavioural model of the Endress+Hauser Promag 50
//!   electromagnetic reference meter
//! * [`turbine`] — behavioural model of a turbine-wheel meter (the
//!   commercial baseline the paper's accuracy is compared against)
//! * [`metrics`] — resolution / repeatability / linearity / response-time
//!   estimators matching the paper's definitions
//! * [`runner`] — co-simulation of the device under test and both reference
//!   meters on shared true flow, plus the field-calibration procedure
//!
//! [`SensorEnvironment`]: hotwire_physics::SensorEnvironment

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod line;
pub mod metrics;
pub mod promag;
pub mod runner;
pub mod scenario;
pub mod turbine;

pub use line::WaterLine;
pub use promag::Promag50;
pub use runner::{LineRunner, Trace, TraceSample};
pub use scenario::{Scenario, Schedule};
pub use turbine::TurbineMeter;
