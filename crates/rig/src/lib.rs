//! The evaluation rig: the Vinci water-station measurement line in software.
//!
//! §5 of the paper: "The whole set-up consisted in a dedicated line for the
//! measurements, derived from conventional water lines, in which pressure
//! and water speed could be fine tuned. The line was also equipped with a
//! commercial high resolution magnetic water meter (Promag 50)…"
//!
//! * [`scenario`] — piecewise flow/pressure/temperature schedules (steps,
//!   ramps, staircases, pressure peaks)
//! * [`mod@line`] — the measurement line: schedules + pipe profile + turbulence
//!   → the instantaneous [`SensorEnvironment`] at the probe
//! * [`maintain`] — deterministic per-line maintenance policies
//!   ([`Policy`], [`MaintenanceEngine`]): scheduled / event-triggered /
//!   hybrid re-zero–refit–persist decisions driven through the
//!   modality-generic `Meter` calibration surface, wear-budgeted and
//!   RNG-neutral
//! * [`promag`] — behavioural model of the Endress+Hauser Promag 50
//!   electromagnetic reference meter
//! * [`turbine`] — behavioural model of a turbine-wheel meter (the
//!   commercial baseline the paper's accuracy is compared against)
//! * [`metrics`] — resolution / repeatability / linearity / response-time
//!   estimators matching the paper's definitions, including the streaming
//!   [`Welford`] accumulator
//! * [`record`] — push-based recording: the [`Recorder`] sink trait, the
//!   columnar [`TraceStore`], streaming [`RunReductions`] reducers, CSV
//!   streaming and the per-spec [`RecordPolicy`] (sweep experiments run in
//!   O(1) sample memory under [`RecordPolicy::MetricsOnly`])
//! * [`runner`] — co-simulation of the device under test and both reference
//!   meters on shared true flow, plus the field-calibration procedure
//! * [`campaign`] — declarative [`RunSpec`]s and the [`Campaign`] executor
//! * [`fleet`] — populations of lines behind one [`FleetSpec`] template:
//!   thousands to millions of seed-diverse lines batched over the same
//!   thread pool at [`RecordPolicy::MetricsOnly`], folded into
//!   jobs-invariant population aggregates (resolution percentiles, health
//!   census, fault incidence) through mergeable O(shard)
//!   [`ShardAggregates`] — the unit of shard fan-out and checkpointing
//! * [`sketch`] — the fixed-size deterministic [`QuantileSketch`]
//!   (log-bucketed, integer counts, associative merge) behind large-fleet
//!   percentiles
//! * [`checkpoint`] — durable fleet progress ([`FleetCheckpoint`]):
//!   atomic bit-exact serialization of a shard accumulator so a killed
//!   fleet run resumes bit-identically
//! * [`ingest`] — the service side of §6's diffuse deployment: per-meter
//!   [`MeterSession`]s reassemble framed telemetry from captured wires
//!   (bounded queues, explicit [`DropPolicy`]), derive a fleet health
//!   census + alert stream purely from the wire records, and score
//!   detection fidelity against the simulator's ground truth —
//!   bit-identical at any job count
//! * [`fault`] — seeded, time-triggered fault schedules ([`FaultSchedule`])
//!   injectable into any run: ADC/DAC/supply/EEPROM/UART faults plus abrupt
//!   physics events, executed deterministically by the campaign layer
//! * [`exec`] — the deterministic scoped-thread parallel map underneath it
//! * [`obs`] — deterministic structured observability: per-run event logs
//!   ([`obs::EventLog`]) fed by the firmware's `Observer` hook, hot-loop
//!   counters and histograms, campaign-wide merged snapshots
//!   ([`obs::ObsSnapshot`], bit-identical at any job count) and the
//!   per-experiment profiling registry behind `repro --json`'s `"obs"`
//!   section
//!
//! # Campaigns
//!
//! Experiments describe their runs as [`RunSpec`]s — meter config, die
//! parameters, calibration step, scenario, seeds, sample cadence, settled
//! windows — and hand the batch to a [`Campaign`]:
//!
//! ```no_run
//! use hotwire_core::FlowMeterConfig;
//! use hotwire_rig::{Campaign, RunSpec, Scenario};
//!
//! let specs: Vec<RunSpec> = [50.0, 100.0, 200.0]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, &cm_s)| {
//!         RunSpec::new(
//!             format!("steady-{cm_s}"),
//!             FlowMeterConfig::water_station(),
//!             Scenario::steady(cm_s, 6.0),
//!             hotwire_rig::campaign::derive_seed(42, i as u64),
//!         )
//!         .with_windows((3.0, 3.0))
//!     })
//!     .collect();
//!
//! let outcomes = Campaign::new().run(&specs)?;
//! for o in &outcomes {
//!     println!("{}: {:.1} ± {:.2} cm/s", o.label, o.settled_mean(), o.settled_std());
//! }
//! # Ok::<(), hotwire_core::CoreError>(())
//! ```
//!
//! Runs execute across worker threads (all cores by default; see
//! [`exec::set_default_jobs`] / [`Campaign::with_jobs`]) and the output is
//! **bit-for-bit identical for any job count**: each run is a pure,
//! single-threaded function of its spec, and the executor returns outcomes
//! in spec order regardless of scheduling. For work that isn't a scenario
//! run, [`Campaign::map`] parallelizes any per-item closure under the same
//! guarantee.
//!
//! [`SensorEnvironment`]: hotwire_physics::SensorEnvironment
//! [`Welford`]: metrics::Welford

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod checkpoint;
pub mod exec;
pub mod fault;
pub mod fleet;
pub mod ingest;
pub mod line;
pub mod maintain;
pub mod metrics;
pub mod modality;
pub mod obs;
pub mod promag;
pub mod record;
pub mod runner;
pub mod scenario;
pub mod sketch;
pub mod turbine;

pub use campaign::{
    Calibration, Campaign, FieldCalibration, LineConfig, RunOutcome, RunSpec, Windows,
    PAPER_SETPOINTS_CM_S,
};
pub use checkpoint::{CheckpointError, FleetCheckpoint};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultSchedule, UartStats};
pub use fleet::{
    FleetAggregates, FleetError, FleetOutcome, FleetShard, FleetSpec, FleetSpecError, LineSummary,
    LineVariation, PartialFleet, ShardAggregates,
};
pub use ingest::{
    ingest_fleet, Alert, AlertKind, DropPolicy, Fidelity, IngestConfig, IngestReport, IngestStats,
    MeterSession,
};
pub use line::WaterLine;
pub use maintain::{Maintenance, MaintenanceCounters, MaintenanceEngine, Policy};
pub use metrics::Welford;
pub use modality::{AnyMeter, Modality, ReferenceKind, ReferenceMeter};
pub use obs::{EventLog, Histogram, ObsConfig, ObsSnapshot, RunObs};
pub use promag::Promag50;
pub use record::{
    Channel, CsvSink, PolicyRecorder, RecordPolicy, Recorder, ReductionPlan, RunReductions,
    SeriesReducer, Tee, TraceStore,
};
pub use runner::{LineRunner, RunTail, Trace, TraceSample};
pub use scenario::{Scenario, Schedule};
pub use sketch::QuantileSketch;
pub use turbine::TurbineMeter;
