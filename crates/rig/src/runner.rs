//! Co-simulation of the device under test and the reference meters.
//!
//! The runner drives one [`FlowMeter`] and both commercial references
//! through a [`Scenario`] on *shared true flow* — the semantics of the
//! paper's evaluation line, where the MAF prototype and the Promag 50 see
//! the same water.

use crate::campaign::FieldCalibration;
use crate::exec;
use crate::fault::{FaultInjector, FaultSchedule, UartStats};
use crate::line::WaterLine;
use crate::maintain::{MaintenanceCounters, MaintenanceEngine};
use crate::metrics::Welford;
use crate::obs::RunObs;
use crate::promag::Promag50;
use crate::record::{CsvSink, Recorder, TraceStore};
use crate::scenario::Scenario;
use crate::turbine::TurbineMeter;
use hotwire_core::calibration::CalPoint;
use hotwire_core::{CoreError, FlowMeter, HealthState, Meter};
use hotwire_physics::SensorEnvironment;
use hotwire_units::Seconds;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One recorded co-simulation sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct TraceSample {
    /// Scenario time, seconds.
    pub t: f64,
    /// True bulk velocity, cm/s (signed).
    pub true_cm_s: f64,
    /// Device-under-test conditioned velocity, cm/s (signed).
    pub dut_cm_s: f64,
    /// Promag 50 reading, cm/s (signed).
    pub promag_cm_s: f64,
    /// Turbine reading, cm/s (unsigned).
    pub turbine_cm_s: f64,
    /// Supply-DAC code commanded by the loop.
    pub supply_code: u32,
    /// Worst heater bubble coverage, 0..=1.
    pub bubble_coverage: f64,
    /// Worst heater CaCO₃ thickness, µm.
    pub fouling_um: f64,
    /// Any fault flag raised this tick.
    pub fault: bool,
    /// Aggregate health state reported by the firmware supervisor.
    pub health: HealthState,
}

/// A recorded co-simulation run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The recorded samples, in time order (columnar; see [`TraceStore`]).
    pub samples: TraceStore,
    /// Telemetry-link statistics (non-zero only when the run carried a
    /// UART fault — see [`FaultSchedule`]).
    pub uart: UartStats,
    /// Structured observability for the run — present when the meter
    /// entered [`LineRunner::run`] with an observer installed (which the
    /// campaign layer does unless the spec disabled it). Deterministic:
    /// equal specs produce equal `obs` at any job count.
    pub obs: Option<RunObs>,
}

impl Trace {
    /// An empty trace with room for `samples` recorded samples.
    pub fn with_capacity(samples: usize) -> Self {
        Trace {
            samples: TraceStore::with_capacity(samples),
            uart: UartStats::default(),
            obs: None,
        }
    }

    /// Streaming statistics of the DUT series over `[t0, t1)` — window
    /// bounds found by `partition_point` binary search on the time column.
    pub fn window_stats(&self, t0: f64, t1: f64) -> Welford {
        self.samples.window_stats(t0, t1)
    }

    /// The last sample, if any (reassembled from the columns).
    pub fn last(&self) -> Option<TraceSample> {
        self.samples.last()
    }

    /// Renders the trace as CSV (header + one row per sample) for external
    /// plotting — the raw material of the paper's Fig. 11. Streaming runs
    /// can write rows directly with a [`CsvSink`] instead.
    pub fn to_csv(&self) -> String {
        let mut sink = CsvSink::with_capacity(self.samples.len());
        for s in &self.samples {
            sink.record(&s);
        }
        sink.into_string()
    }
}

/// Everything [`LineRunner::run_with`] produces besides the samples it
/// pushed into the caller's [`Recorder`].
#[derive(Debug, Default)]
pub struct RunTail {
    /// Telemetry-link statistics (non-zero only for UART-faulted runs).
    pub uart: UartStats,
    /// Structured observability, when an observer was installed.
    pub obs: Option<RunObs>,
    /// Maintenance-policy actions taken during the run (all zero unless
    /// an engine was installed — see
    /// [`install_maintenance`](LineRunner::install_maintenance)).
    pub maintenance: MaintenanceCounters,
}

/// The co-simulation runner, generic over the device under test: any
/// [`Meter`] modality (CTA, heat-pulse, reference adapters) drives the
/// same line, references, fault injector and recording machinery. The
/// default parameter keeps every existing `LineRunner` mention compiling
/// against the CTA meter unchanged.
#[derive(Debug)]
pub struct LineRunner<M: Meter = FlowMeter> {
    line: WaterLine,
    meter: M,
    promag: Promag50,
    turbine: TurbineMeter,
    ref_rng: StdRng,
    env: SensorEnvironment,
    control_dt: Seconds,
    injector: Option<FaultInjector>,
    maintain: Option<MaintenanceEngine>,
}

impl<M: Meter> LineRunner<M> {
    /// Builds a runner for `scenario` around an existing meter
    /// (deterministic under `seed`).
    pub fn new(scenario: Scenario, meter: M, seed: u64) -> Self {
        let control_dt = meter.control_period();
        let full_scale = meter.full_scale();
        LineRunner {
            line: WaterLine::new(scenario, seed),
            meter,
            promag: Promag50::new(full_scale),
            turbine: TurbineMeter::dn50(),
            ref_rng: StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF),
            env: SensorEnvironment::still_water(),
            control_dt,
            injector: None,
            maintain: None,
        }
    }

    /// Installs a maintenance-policy engine: it is consulted once per
    /// produced measurement (one control tick, at the frame boundary)
    /// during [`run`](Self::run) and may re-zero / refit / persist the
    /// meter's calibration. RNG-lane-neutral — see
    /// [`maintain`](crate::maintain).
    pub fn install_maintenance(&mut self, engine: MaintenanceEngine) {
        self.maintain = Some(engine);
    }

    /// Installs a fault schedule: its events will fire at their scheduled
    /// scenario times during [`run`](Self::run).
    pub fn install_faults(&mut self, schedule: FaultSchedule) {
        self.injector = Some(FaultInjector::new(schedule));
    }

    /// Enables telemetry wire capture for the next run: every byte that
    /// reaches the simulated receiver (post-corruption) is also recorded,
    /// retrievable with [`take_wire`](Self::take_wire). Installs an empty
    /// [`FaultSchedule`] when none is present, so clean lines also frame
    /// their telemetry onto the tap.
    pub fn capture_wire(&mut self) {
        if self.injector.is_none() {
            self.injector = Some(FaultInjector::new(FaultSchedule::new(0)));
        }
        self.injector
            .as_mut()
            .expect("injector just installed")
            .capture_wire();
    }

    /// Takes the wire bytes captured since [`capture_wire`](Self::capture_wire);
    /// empty if capture was never enabled.
    pub fn take_wire(&mut self) -> Vec<u8> {
        self.injector
            .as_mut()
            .map(FaultInjector::take_wire)
            .unwrap_or_default()
    }

    /// The device under test.
    #[inline]
    pub fn meter(&self) -> &M {
        &self.meter
    }

    /// Mutable access to the device under test.
    #[inline]
    pub fn meter_mut(&mut self) -> &mut M {
        &mut self.meter
    }

    /// Takes the meter back out of the runner.
    pub fn into_meter(self) -> M {
        self.meter
    }

    /// The number of samples a run at `sample_period_s` is expected to
    /// record (+1 covers the t=0 sample, +1 the final edge) — the right
    /// capacity to reserve in a full-trace sink.
    pub fn expected_samples(&self, sample_period_s: f64) -> usize {
        expected_samples(self.line.scenario().duration_s, sample_period_s)
    }

    /// Runs the scenario to completion, recording one sample every
    /// `sample_period_s` of scenario time into a full [`Trace`].
    ///
    /// This is a **thin delegating wrapper** over
    /// [`run_with`](Self::run_with) with a pre-sized [`TraceStore`] sink —
    /// `run_with` is the one generic entry point every execution path
    /// (campaign, fleet, direct callers) shares; use it directly to stream
    /// into reducers instead of materializing.
    ///
    /// # Panics
    ///
    /// Panics if `sample_period_s` is not a positive number (see
    /// [`run_with`](Self::run_with)).
    pub fn run(&mut self, sample_period_s: f64) -> Trace {
        // Pre-allocating keeps the hot recording loop free of reallocation.
        let mut store = TraceStore::with_capacity(self.expected_samples(sample_period_s));
        let tail = self.run_with(sample_period_s, &mut store);
        Trace {
            samples: store,
            uart: tail.uart,
            obs: tail.obs,
        }
    }

    /// Runs the scenario to completion, pushing one sample every
    /// `sample_period_s` of scenario time into `recorder`.
    ///
    /// The line and reference meters advance at the control rate (the probe
    /// environment is held between control ticks — turbulence above the
    /// control bandwidth is invisible to every instrument on the line).
    ///
    /// # Panics
    ///
    /// Panics if `sample_period_s` is not a positive number. A
    /// non-positive cadence used to silently record *every* control tick
    /// (`t >= next_sample_t` always held) while pre-allocating for none —
    /// the contract is now explicit.
    pub fn run_with<R: Recorder + ?Sized>(
        &mut self,
        sample_period_s: f64,
        recorder: &mut R,
    ) -> RunTail {
        assert!(
            sample_period_s > 0.0,
            "LineRunner::run: sample_period_s must be a positive number of \
             seconds, got {sample_period_s}"
        );
        let mut tail = RunTail::default();
        let mut next_sample_t = 0.0;
        // Hot-loop instrumentation is gated on the observer's presence:
        // without one, the per-step overhead is a single `bool` test.
        let observing = self.meter.has_observer();
        let mut run_obs = observing.then(RunObs::default);
        let mut steps_since_control: u64 = 0;
        let frame_ticks = u64::from(self.meter.ticks_per_frame());
        while !self.line.finished() {
            // Sub-control-tick fault windows engage and expire at the same
            // scenario time; only per-tick `apply` calls give them their
            // single faulted tick, so the frame path stands down for them.
            // Checked before `apply` — engaging hides the window.
            let t_now = self.line.time();
            let subtick_fault = self
                .injector
                .as_ref()
                .is_some_and(|inj| inj.has_subtick_window(t_now));
            // Faults engage/revert on the scenario clock, before the tick
            // they first affect. The scenario clock is constant between
            // control ticks, so for a frame-aligned meter one `apply`
            // reaches the same phase fixed point the per-tick path does.
            if let Some(injector) = self.injector.as_mut() {
                injector.apply(t_now, &mut self.meter);
            }
            let m = if self.meter.frame_phase() == 0 && !subtick_fault {
                // Hot path: the whole modulator-rate frame runs as one SoA
                // block walk, bit-identical to the per-tick ticks below.
                let m = self.meter.step_frame(self.env);
                if let Some(obs) = run_obs.as_mut() {
                    obs.counters.modulator_steps += frame_ticks;
                    steps_since_control += frame_ticks;
                }
                m
            } else {
                // Per-tick path: a de-aligned meter (single-stepped before
                // being handed to the runner) or a pending sub-tick fault
                // window.
                let measurement = self.meter.step(self.env);
                if let Some(obs) = run_obs.as_mut() {
                    obs.counters.modulator_steps += 1;
                    steps_since_control += 1;
                }
                let Some(m) = measurement else { continue };
                m
            };
            if let Some(obs) = run_obs.as_mut() {
                obs.counters.control_ticks += 1;
                // Modulator ticks from the ADC samples entering the channel
                // to this conditioned measurement (= the CIC decimation).
                obs.latency_ticks.record(steps_since_control as i64);
                obs.pi_output.record(m.supply_code as i64);
                steps_since_control = 0;
            }

            // Frame boundary: one maintenance-policy evaluation per
            // produced measurement (identical clocking on the frame-batched
            // and per-tick paths; draws no RNG, so the reference lanes
            // below are untouched).
            if let Some(engine) = self.maintain.as_mut() {
                engine.service(&mut self.meter);
            }

            // Control tick: refresh environment and references.
            self.env = self.line.step(self.control_dt);
            let bulk = self.line.bulk_velocity();
            let promag = self.promag.step(self.control_dt, bulk, &mut self.ref_rng);
            let turbine = self.turbine.step(self.control_dt, bulk);

            let t = self.line.time();
            if t >= next_sample_t {
                next_sample_t = t + sample_period_s;
                if let Some(injector) = self.injector.as_mut() {
                    injector.observe(t, &m, &mut self.meter);
                }
                if let Some(obs) = run_obs.as_mut() {
                    obs.counters.samples_recorded += 1;
                }
                recorder.record(&TraceSample {
                    t,
                    true_cm_s: bulk.to_cm_per_s(),
                    dut_cm_s: m.velocity.to_cm_per_s(),
                    promag_cm_s: promag.to_cm_per_s(),
                    turbine_cm_s: turbine.to_cm_per_s(),
                    supply_code: m.supply_code,
                    bubble_coverage: self.meter.worst_bubble_coverage(),
                    fouling_um: self.meter.worst_fouling_um(),
                    fault: m.faults.any(),
                    health: m.health,
                });
            }
        }
        if let Some(injector) = &self.injector {
            tail.uart = injector.stats();
        }
        if let Some(engine) = &self.maintain {
            tail.maintenance = engine.counters();
        }
        if let Some(mut obs) = run_obs {
            // Collect the event log the campaign layer installed; the
            // meter leaves the run unobserved (a second `run` would carry
            // no `obs`, matching the empty observer).
            if let Some(mut observer) = self.meter.take_observer() {
                obs.events = observer.drain();
                obs.counters.events_dropped = observer.dropped();
            }
            obs.counters.absorb_events(&obs.events);
            tail.obs = Some(obs);
        }
        tail
    }
}

/// Expected sample count for a `duration_s` scenario at `sample_period_s`
/// (+1 covers the t=0 sample, +1 the final edge) — the right capacity for
/// a full-trace sink.
pub fn expected_samples(duration_s: f64, sample_period_s: f64) -> usize {
    if sample_period_s > 0.0 {
        (duration_s / sample_period_s).ceil() as usize + 2
    } else {
        0
    }
}

/// Runs the paper's field-calibration procedure: visits each setpoint on a
/// steady line, averages the Promag reference and the DUT conductance, fits
/// King's law and installs it into the meter.
///
/// The setpoints execute as a campaign: each runs on a replica of `meter`'s
/// build (same config, die parameters and seed), up to the process default
/// job count at a time (see [`exec::default_jobs`]). Results are
/// jobs-invariant; the converged fluid-temperature estimate from the
/// calibration runs is adopted by `meter` before fitting, so temperature
/// compensation learns the same reference-resistor skew it would have
/// learned running the setpoints itself.
///
/// Returns the calibration points used.
///
/// # Errors
///
/// Returns [`CoreError::Calibration`] if the fit fails.
#[deprecated(
    since = "0.1.0",
    note = "CTA-only direct path: build a `FieldCalibration` and call its `apply`, \
            or put `Calibration::Field` on a `RunSpec` and let the campaign \
            route it per modality"
)]
pub fn field_calibrate(
    meter: &mut FlowMeter,
    setpoints_cm_s: &[f64],
    settle_s: f64,
    average_s: f64,
    seed: u64,
) -> Result<Vec<CalPoint>, CoreError> {
    #[allow(deprecated)]
    field_calibrate_jobs(
        meter,
        setpoints_cm_s,
        settle_s,
        average_s,
        seed,
        exec::default_jobs(),
    )
}

/// [`field_calibrate`] with an explicit job count (`1` = serial).
///
/// # Errors
///
/// Returns [`CoreError::Calibration`] if the fit fails.
#[deprecated(
    since = "0.1.0",
    note = "CTA-only direct path: build a `FieldCalibration` and call its `apply`, \
            or put `Calibration::Field` on a `RunSpec` and let the campaign \
            route it per modality"
)]
pub fn field_calibrate_jobs(
    meter: &mut FlowMeter,
    setpoints_cm_s: &[f64],
    settle_s: f64,
    average_s: f64,
    seed: u64,
    jobs: usize,
) -> Result<Vec<CalPoint>, CoreError> {
    // Thin shim over the routed path — bit-identical by construction.
    FieldCalibration {
        setpoints_cm_s: setpoints_cm_s.to_vec(),
        settle_s,
        average_s,
        seed,
    }
    .apply(meter, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use hotwire_core::config::FlowMeterConfig;
    use hotwire_physics::MafParams;

    fn test_meter(seed: u64) -> FlowMeter {
        FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), seed).unwrap()
    }

    #[test]
    fn steady_run_tracks_truth() {
        let meter = test_meter(11);
        let mut runner = LineRunner::new(Scenario::steady(100.0, 4.0), meter, 11);
        let trace = runner.run(0.01);
        assert!(!trace.samples.is_empty());
        let mean = metrics::mean(trace.samples.dut_in(2.0, 4.0));
        assert!(
            (mean - 100.0).abs() < 25.0,
            "factory-calibrated DUT mean {mean} cm/s at 100 cm/s true"
        );
        // Promag stays within its datasheet band.
        let promag_err: Vec<f64> = trace
            .samples
            .iter()
            .filter(|s| s.t > 1.0)
            .map(|s| s.promag_cm_s - s.true_cm_s)
            .collect();
        assert!(metrics::std_dev(&promag_err) < 1.5);
    }

    #[test]
    fn field_calibration_improves_accuracy() {
        let mut meter = test_meter(12);
        FieldCalibration {
            setpoints_cm_s: vec![15.0, 50.0, 100.0, 160.0, 220.0],
            settle_s: 0.6,
            average_s: 0.4,
            seed: 12,
        }
        .apply(&mut meter, exec::default_jobs())
        .unwrap();
        let mut runner = LineRunner::new(Scenario::steady(120.0, 4.0), meter, 13);
        let trace = runner.run(0.01);
        let mean = metrics::mean(trace.samples.dut_in(2.0, 4.0));
        assert!(
            (mean - 120.0).abs() < 8.0,
            "calibrated DUT mean {mean} cm/s at 120 cm/s true"
        );
    }

    #[test]
    fn deprecated_field_calibrate_shim_matches_routed_path() {
        // The CTA-only free functions are shims over
        // `FieldCalibration::apply` — equal points and equal meter state,
        // bit for bit.
        let mut via_shim = test_meter(21);
        #[allow(deprecated)]
        let shim_points =
            field_calibrate(&mut via_shim, &[20.0, 90.0, 180.0], 0.5, 0.3, 21).unwrap();
        let mut via_recipe = test_meter(21);
        let recipe_points = FieldCalibration {
            setpoints_cm_s: vec![20.0, 90.0, 180.0],
            settle_s: 0.5,
            average_s: 0.3,
            seed: 21,
        }
        .apply(&mut via_recipe, exec::default_jobs())
        .unwrap();
        assert_eq!(shim_points, recipe_points);
        assert_eq!(via_shim.state_digest(), via_recipe.state_digest());
    }

    #[test]
    fn trace_records_all_instruments() {
        let meter = test_meter(14);
        let mut runner = LineRunner::new(Scenario::steady(150.0, 3.0), meter, 14);
        let trace = runner.run(0.05);
        let last = trace.last().unwrap();
        // The truth comes back through the schedule's piecewise-linear
        // interpolation — compare with a tolerance, not float `==`.
        assert!(
            (last.true_cm_s - 150.0).abs() < 1e-9,
            "true velocity {} cm/s",
            last.true_cm_s
        );
        assert!(last.promag_cm_s > 100.0);
        assert!(last.turbine_cm_s > 100.0);
        assert!(last.supply_code > 0);
        assert!(!last.fault || last.bubble_coverage > 0.0 || last.fouling_um > 0.0);
    }

    #[test]
    fn sample_period_respected() {
        let meter = test_meter(15);
        let mut runner = LineRunner::new(Scenario::steady(100.0, 2.0), meter, 15);
        let trace = runner.run(0.1);
        // ≈ 20 samples expected for a 2 s scenario at 0.1 s cadence.
        assert!(
            (15..=25).contains(&trace.samples.len()),
            "{} samples",
            trace.samples.len()
        );
    }

    #[test]
    fn csv_export_round_trips_row_count() {
        let meter = test_meter(17);
        let mut runner = LineRunner::new(Scenario::steady(80.0, 1.0), meter, 17);
        let trace = runner.run(0.1);
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), trace.samples.len() + 1);
        assert!(lines[0].starts_with("t_s,true_cm_s"));
        // Every data row parses back to the right number of fields.
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), 10, "row `{row}`");
        }
    }

    #[test]
    #[should_panic(expected = "sample_period_s must be a positive number")]
    fn zero_sample_period_is_rejected() {
        // Regression: `run(0.0)` used to pre-allocate for zero samples and
        // then record every control tick.
        let meter = test_meter(18);
        let mut runner = LineRunner::new(Scenario::steady(50.0, 1.0), meter, 18);
        runner.run(0.0);
    }

    #[test]
    #[should_panic(expected = "sample_period_s must be a positive number")]
    fn negative_sample_period_is_rejected() {
        let meter = test_meter(18);
        let mut runner = LineRunner::new(Scenario::steady(50.0, 1.0), meter, 18);
        runner.run(-0.1);
    }

    #[test]
    #[should_panic(expected = "sample_period_s must be a positive number")]
    fn nan_sample_period_is_rejected() {
        let meter = test_meter(18);
        let mut runner = LineRunner::new(Scenario::steady(50.0, 1.0), meter, 18);
        runner.run(f64::NAN);
    }

    #[test]
    fn window_stats_matches_linear_filter() {
        // The partition_point window bounds agree with the historical
        // linear scan, bit for bit.
        let meter = test_meter(19);
        let mut runner = LineRunner::new(Scenario::steady(90.0, 3.0), meter, 19);
        let trace = runner.run(0.02);
        let post_hoc: Welford = trace
            .samples
            .iter()
            .filter(|s| s.t >= 1.0 && s.t < 2.5)
            .map(|s| s.dut_cm_s)
            .collect();
        assert_eq!(trace.window_stats(1.0, 2.5), post_hoc);
        assert!(trace.window_stats(1.0, 2.5).count() > 0);
    }

    #[test]
    fn run_with_streams_into_custom_recorder() {
        use crate::record::{PolicyRecorder, RecordPolicy, ReductionPlan};
        let meter = test_meter(20);
        let mut runner = LineRunner::new(Scenario::steady(70.0, 2.0), meter, 20);
        let mut rec = PolicyRecorder::new(
            RecordPolicy::MetricsOnly,
            ReductionPlan {
                settle: (1.0, 2.0),
                ..ReductionPlan::default()
            },
        );
        let tail = runner.run_with(0.05, &mut rec);
        assert!(tail.obs.is_none(), "no observer was installed");
        let (store, red) = rec.finish();
        assert!(store.is_empty(), "MetricsOnly must hold no samples");
        assert!(red.samples > 20);
        assert!(red.settled.count() > 0);
        assert!((red.settled.mean() - 70.0).abs() < 35.0);
    }

    #[test]
    fn into_meter_returns_dut() {
        let meter = test_meter(16);
        let mut runner = LineRunner::new(Scenario::steady(50.0, 1.0), meter, 16);
        runner.run(0.1);
        let meter = runner.into_meter();
        assert!(meter.last_measurement().is_some());
    }
}
