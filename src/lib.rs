//! # hotwire — facade crate
//!
//! Re-exports the whole workspace behind one dependency, mirroring the layer
//! structure of the reproduction of *"Hot Wire Anemometric MEMS Sensor for
//! Water Flow Monitoring"* (Melani et al., DATE 2008):
//!
//! * [`units`] — physical-quantity newtypes,
//! * [`physics`] — the simulated MEMS die, water, bubbles and scale,
//! * [`afe`] — the analog front end (bridge, in-amp, ΣΔ ADC, DACs),
//! * [`dsp`] — the fixed-point DSP IP library,
//! * [`isif`] — the ISIF platform emulation,
//! * [`core`] — the CTA conditioning firmware (the paper's contribution),
//! * [`rig`] — the water-station evaluation rig, the reference meters and
//!   the deterministic parallel campaign executor
//!   (`rig::Campaign` / `rig::RunSpec`).
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory.

pub use hotwire_afe as afe;
pub use hotwire_core as core;
pub use hotwire_dsp as dsp;
pub use hotwire_isif as isif;
pub use hotwire_physics as physics;
pub use hotwire_rig as rig;
pub use hotwire_units as units;
