//! # hotwire — facade crate
//!
//! Re-exports the whole workspace behind one dependency, mirroring the layer
//! structure of the reproduction of *"Hot Wire Anemometric MEMS Sensor for
//! Water Flow Monitoring"* (Melani et al., DATE 2008):
//!
//! * [`units`] — physical-quantity newtypes,
//! * [`physics`] — the simulated MEMS die, water, bubbles and scale,
//! * [`afe`] — the analog front end (bridge, in-amp, ΣΔ ADC, DACs),
//! * [`dsp`] — the fixed-point DSP IP library,
//! * [`isif`] — the ISIF platform emulation,
//! * [`core`] — the CTA conditioning firmware (the paper's contribution),
//! * [`rig`] — the water-station evaluation rig, the reference meters and
//!   the deterministic parallel campaign executor
//!   (`rig::Campaign` / `rig::RunSpec`).
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory.

pub use hotwire_afe as afe;
pub use hotwire_core as core;
pub use hotwire_dsp as dsp;
pub use hotwire_isif as isif;
pub use hotwire_physics as physics;
pub use hotwire_rig as rig;
pub use hotwire_units as units;

/// The working set for driving simulations: one `use hotwire::prelude::*`
/// brings in the meter, its configuration, the physics environment, the
/// common unit newtypes and the whole declarative run machinery
/// ([`RunSpec`](prelude::RunSpec) / [`Campaign`](prelude::Campaign) /
/// [`FleetSpec`](prelude::FleetSpec)) without spelling out which layer
/// each name lives in.
///
/// Layer-specific items (ISIF registers, DSP blocks, AFE internals,
/// firmware submodules like `core::direction` or `core::burst`) stay
/// behind their module paths on purpose — the prelude is for *running*
/// the system, not for reaching into it.
///
/// ```no_run
/// use hotwire::prelude::*;
///
/// let spec = RunSpec::new(
///     "demo",
///     FlowMeterConfig::water_station(),
///     Scenario::steady(100.0, 10.0),
///     42,
/// )
/// .with_windows((4.0, 6.0));
/// let outcome = Campaign::new().run(&[spec])?;
/// println!("{:.1} cm/s", outcome[0].settled_mean());
/// # Ok::<(), hotwire::core::CoreError>(())
/// ```
pub mod prelude {
    pub use hotwire_core::{
        CoreError, FlowMeter, FlowMeterConfig, HealthState, HeatPulseMeter, Measurement, Meter,
    };
    pub use hotwire_physics::{MafParams, SensorEnvironment};
    pub use hotwire_rig::campaign::{derive_seed, Calibration, FieldCalibration};
    pub use hotwire_rig::checkpoint::{CheckpointError, FleetCheckpoint};
    pub use hotwire_rig::fleet::{
        FleetAggregates, FleetError, FleetOutcome, FleetShard, FleetSpec, FleetSpecError,
        LineSummary, LineVariation, PartialFleet, ReferenceTemplate, ShardAggregates,
    };
    pub use hotwire_rig::ingest::{ingest_fleet, IngestConfig, IngestReport, MeterSession};
    pub use hotwire_rig::modality::{AnyMeter, Modality, ReferenceKind, ReferenceMeter};
    #[allow(deprecated)]
    pub use hotwire_rig::runner::field_calibrate;
    pub use hotwire_rig::sketch::QuantileSketch;
    pub use hotwire_rig::{
        metrics, Campaign, FaultKind, FaultSchedule, LineConfig, LineRunner, Maintenance,
        MaintenanceCounters, ObsConfig, Policy, RecordPolicy, Recorder, RunOutcome, RunReductions,
        RunSpec, Scenario, Schedule, TraceStore, Windows,
    };
    pub use hotwire_units::{Celsius, Hertz, KelvinDelta, MetersPerSecond, Seconds};
}
