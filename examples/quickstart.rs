//! Quickstart: build the instrument, point it at flowing water, read cm/s.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hotwire::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's water-station configuration: constant-temperature mode,
    // 15 K overheat, 1 kHz control rate, 0.1 Hz output filter.
    let config = FlowMeterConfig::water_station();
    let mut meter = FlowMeter::new(config, MafParams::nominal(), 42)?;

    println!("hot-wire MEMS flow meter — quickstart");
    println!(
        "bridge: R1 = {:.1}, R2 = {:.1}, regulating Rh* = {:.2}",
        meter.bridge().r_series_heater,
        meter.bridge().r_series_reference,
        meter.regulated_resistance()
    );

    // Step the co-simulation through a few operating points. The CTA loop
    // itself settles in tens of milliseconds, but the paper's 0.1 Hz output
    // filter has a ~1.6 s time constant, so each point gets 20 simulated
    // seconds before we read it.
    for v_cm_s in [0.0, 50.0, 100.0, 200.0, 250.0] {
        let env = SensorEnvironment {
            velocity: MetersPerSecond::from_cm_per_s(v_cm_s),
            ..SensorEnvironment::still_water()
        };
        let m = meter.run(20.0, env).expect("control loop ran");
        println!(
            "true {v_cm_s:6.1} cm/s → measured {:7.2} cm/s  (supply code {:4}, wire {:5.1} mW, dir {:?})",
            m.speed.to_cm_per_s(),
            m.supply_code,
            m.wire_power.to_milliwatts(),
            m.direction,
        );
    }

    Ok(())
}
