//! A tour of the ISIF platform facilities outside the flow-metering path:
//! configuration registers, the software-IP scheduler and its LEON cycle
//! budget, the calibration EEPROM, telemetry framing, the SPI bus, and the
//! watchdog.
//!
//! ```sh
//! cargo run --release --example platform_tour
//! ```

use hotwire::isif::regs::addr;
use hotwire::isif::sched::IpTask;
use hotwire::isif::spi::{SpiEeprom, SpiMaster};
use hotwire::isif::uart::{encode_frame, FrameDecoder};
use hotwire::isif::{CalibrationStore, IsifPlatform, Scheduler};
use hotwire::prelude::*;

/// A toy software IP: an integrator with a declared LEON cycle cost.
struct SoftIntegrator {
    name: String,
    acc: i64,
    input: i32,
}

impl IpTask for SoftIntegrator {
    fn name(&self) -> &str {
        &self.name
    }
    fn cycle_cost(&self) -> u32 {
        180
    }
    fn run(&mut self) {
        self.acc += self.input as i64;
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform = IsifPlatform::new(Hertz::from_kilohertz(256.0))?;

    // --- configuration registers (the JLCC-style config bus) ---
    platform.regs_mut().write(addr::DECIMATION, 256)?;
    platform.regs_mut().write(addr::CH0_GAIN, 50)?;
    platform.regs_mut().write(addr::PULSE_DUTY, 250)?; // per-mille
    println!("register journal: {:?}", platform.regs().journal());

    // --- software-IP scheduler with a LEON cycle budget ---
    let mut sched = Scheduler::new(40_000)?; // 40 MHz / 1 kHz control rate
    for i in 0..4 {
        sched.add_task(Box::new(SoftIntegrator {
            name: format!("iir{i}"),
            acc: 0,
            input: i,
        }));
    }
    for _ in 0..1000 {
        sched.tick();
    }
    println!(
        "scheduler: {} tasks, {:.1} % of the LEON budget used, {} overruns",
        sched.task_count(),
        sched.utilization() * 100.0,
        sched.overruns()
    );

    // --- calibration EEPROM with CRC ---
    let mut eeprom = CalibrationStore::new();
    eeprom.write_record(
        0,
        &CalibrationStore::encode_f64s(&[5.27e-4, 1.79e-3, 0.555]),
    )?;
    let king = CalibrationStore::decode_f64s(eeprom.read_record(0)?)?;
    println!("eeprom: King constants restored: {king:?}");

    // --- telemetry framing over a noisy line ---
    let mut wire = vec![0x00, 0x37, 0xA5]; // noise, incl. a fake SOH
    wire.extend(encode_frame(b"v=101.3cm/s dir=fwd")?);
    let mut decoder = FrameDecoder::new();
    decoder.flush(); // idle-line reset after the noise burst
    let mut decoded = Vec::new();
    for b in &wire[3..] {
        if let Some(frame) = decoder.push(*b) {
            decoded.push(frame);
        }
    }
    println!(
        "uart: {} frame(s) decoded: {:?}",
        decoded.len(),
        String::from_utf8_lossy(&decoded[0])
    );

    // --- SPI bus to the external log EEPROM ---
    let mut spi = SpiMaster::new(Hertz::from_megahertz(1.0))?;
    let mut ext = SpiEeprom::new_4k();
    spi.transaction(&mut ext, &[0x06]); // WREN
    spi.transaction(&mut ext, &[0x02, 0x00, 0x40, 0xDE, 0xAD]); // WRITE @0x40
    let rx = spi.transaction(&mut ext, &[0x03, 0x00, 0x40, 0x00, 0x00]); // READ
    println!(
        "spi: wrote+read back {:02X?} ({} bytes on the bus, {:.0} µs)",
        &rx[3..],
        spi.bytes_transferred(),
        spi.transfer_time(spi.bytes_transferred() as usize).get() * 1e6
    );

    // --- watchdog ---
    let wd = platform.watchdog_mut();
    for _ in 0..100 {
        wd.kick();
        wd.tick();
    }
    println!(
        "watchdog: {} resets after 100 healthy ticks",
        wd.reset_count()
    );
    for _ in 0..40 {
        wd.tick(); // starved
    }
    println!("watchdog: {} resets after starvation", wd.reset_count());

    Ok(())
}
