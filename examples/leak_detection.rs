//! Leak detection in a district metered area — the paper's §6 deployment
//! story: "allowing also any malfunction behavior (e.g. water loss in tube),
//! more usual in peripheral part of the networks, to be immediately
//! localized and isolated."
//!
//! A battery probe (burst mode, one 1 s measurement per "sample slot")
//! watches a pipe whose demand follows a day/night cycle. The classic
//! analysis is the *night-flow minimum*: legitimate demand collapses at
//! night, so a step in the nightly minimum is a leak signature. On day 4 a
//! leak opens and adds a constant offset; the probe's nightly minima expose
//! it immediately.
//!
//! ```sh
//! cargo run --release --example leak_detection
//! ```

use hotwire::core::burst::{BurstConfig, BurstController};
use hotwire::prelude::*;

/// Legitimate demand over the day (cm/s): high daytime draw, ~12 cm/s
/// night floor between 02:00 and 05:00.
fn demand_cm_s(hour: f64) -> f64 {
    let day_component = (core::f64::consts::PI * ((hour - 6.0) / 14.0)).sin();
    12.0 + 120.0 * day_component.max(0.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The reduced-rate profile keeps the example quick; the firmware path is
    // identical to the 256 kHz silicon profile.
    let mut meter = FlowMeter::new(FlowMeterConfig::test_profile(), MafParams::nominal(), 2026)?;
    // Quick field calibration.
    let points: Vec<_> = [15.0, 60.0, 120.0, 200.0]
        .iter()
        .map(|&v| {
            meter.record_calibration_point(
                MetersPerSecond::from_cm_per_s(v),
                SensorEnvironment::still_water(),
                0.5,
                0.3,
            )
        })
        .collect();
    meter.calibrate(&points)?;
    let mut probe = BurstController::new(meter, BurstConfig::asic_default())?;

    println!("7-day night-flow analysis (leak opens at day 4, +18 cm/s):\n");
    println!("{:>5} {:>18} {:>10}", "day", "night min [cm/s]", "verdict");

    let mut baseline_min: Option<f64> = None;
    let mut detected_on: Option<usize> = None;
    for day in 0..7 {
        let leak = if day >= 4 { 18.0 } else { 0.0 };
        let mut night_min = f64::INFINITY;
        // One burst every 30 simulated minutes; night slots are 02:00–05:00.
        for slot in 0..48 {
            let hour = slot as f64 * 0.5;
            let env = SensorEnvironment {
                velocity: MetersPerSecond::from_cm_per_s(demand_cm_s(hour) + leak),
                ..SensorEnvironment::still_water()
            };
            let reading = probe.measure_once(env);
            if (2.0..5.0).contains(&hour) {
                night_min = night_min.min(reading.speed.to_cm_per_s());
            }
        }
        let verdict = match baseline_min {
            None => {
                baseline_min = Some(night_min);
                "baseline"
            }
            Some(base) if night_min > base + 10.0 => {
                if detected_on.is_none() {
                    detected_on = Some(day);
                }
                "LEAK?"
            }
            _ => "ok",
        };
        println!("{day:>5} {night_min:>18.1} {verdict:>10}");
    }

    match detected_on {
        Some(day) => println!("\nleak detected from day {day} (true onset: day 4)"),
        None => println!("\nno leak detected — investigate thresholds"),
    }
    Ok(())
}
