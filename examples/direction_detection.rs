//! Flow-direction detection (paper §2/§5: "the flow direction was clearly
//! detected"): the two adjoined heaters cool asymmetrically, and the sign of
//! their differential tells upstream from downstream.
//!
//! ```sh
//! cargo run --release --example direction_detection
//! ```

use hotwire::core::direction::FlowDirection;
use hotwire::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut meter = FlowMeter::new(FlowMeterConfig::water_station(), MafParams::nominal(), 7)?;

    println!("bidirectional flow sweep:");
    println!(
        "{:>12} {:>14} {:>12}",
        "true [cm/s]", "detected", "signed [cm/s]"
    );
    let mut correct = 0;
    let mut total = 0;
    for v in [80.0, 25.0, -25.0, -80.0, -200.0, 200.0, 10.0, -10.0] {
        let env = SensorEnvironment {
            velocity: MetersPerSecond::from_cm_per_s(v),
            ..SensorEnvironment::still_water()
        };
        // 8 s per point lets the 0.1 Hz output filter settle.
        let m = meter.run(8.0, env).expect("control loop ran");
        let expected = if v > 0.0 {
            FlowDirection::Forward
        } else {
            FlowDirection::Reverse
        };
        total += 1;
        if m.direction == expected {
            correct += 1;
        }
        println!(
            "{:12.1} {:>14} {:12.1}",
            v,
            format!("{:?}", m.direction),
            m.velocity.to_cm_per_s()
        );
    }
    println!("\ndirection correct on {correct}/{total} operating points");
    Ok(())
}
