//! The Vinci water-station evaluation (paper §5, Fig. 11): calibrate the
//! MEMS probe against the Promag 50, then ride a flow staircase through the
//! full 0–250 cm/s range and compare all three instruments.
//!
//! ```sh
//! cargo run --release --example water_station
//! ```

use hotwire::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut meter = FlowMeter::new(FlowMeterConfig::water_station(), MafParams::nominal(), 2008)?;

    println!("== field calibration against the Promag 50 ==");
    let points = FieldCalibration {
        setpoints_cm_s: vec![15.0, 50.0, 100.0, 160.0, 220.0],
        settle_s: 1.0,
        average_s: 0.5,
        seed: 7,
    }
    .apply(&mut meter, 1)?;
    let cal = meter.calibration().expect("calibration installed");
    println!(
        "fitted King's law: A = {:.3e} W/K, B = {:.3e}, n = {:.3} ({} points, rms residual {:.2} %)",
        cal.a,
        cal.b,
        cal.n,
        points.len(),
        cal.rms_relative_residual(&points) * 100.0
    );

    println!("\n== Fig. 11 staircase: 0 → 250 → 0 cm/s ==");
    let mut runner = LineRunner::new(Scenario::fig11_staircase(4.0), meter, 99);
    let trace = runner.run(1.0);
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "t[s]", "true", "MEMS", "Promag", "turbine"
    );
    for s in &trace.samples {
        println!(
            "{:6.1} {:10.1} {:10.1} {:10.1} {:10.1}",
            s.t, s.true_cm_s, s.dut_cm_s, s.promag_cm_s, s.turbine_cm_s
        );
    }

    let pairs: Vec<(f64, f64)> = trace
        .samples
        .truth()
        .iter()
        .copied()
        .zip(trace.samples.dut().iter().copied())
        .collect();
    let rms = metrics::rms_error(&pairs);
    let lin = metrics::linearity(&pairs, 250.0) * 100.0;
    println!(
        "\nMEMS vs true flow: rms error {rms:.2} cm/s, worst linearity deviation {lin:.2} % FS"
    );

    // Dump the full series for external plotting (the Fig. 11 raw data).
    let csv_path = std::env::temp_dir().join("hotwire_fig11.csv");
    std::fs::write(&csv_path, trace.to_csv())?;
    println!("series written to {}", csv_path.display());
    Ok(())
}
