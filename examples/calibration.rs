//! The King's-law calibration procedure (paper §2/§4): collect
//! `(velocity, conductance)` points against the reference meter, fit
//! `G = A + B·vⁿ`, persist to EEPROM, survive a power cycle.
//!
//! ```sh
//! cargo run --release --example calibration
//! ```

use hotwire::core::calibration::KingCalibration;
use hotwire::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A worst-case-tolerance die: ±1 % heater spread, ±1.5 % reference —
    // exactly what field calibration exists to absorb.
    let mut meter = FlowMeter::new(
        FlowMeterConfig::water_station(),
        MafParams::worst_case(),
        31,
    )?;

    let factory = *meter.calibration().expect("factory calibration");
    println!(
        "factory calibration: A = {:.3e}, B = {:.3e}, n = {:.3}",
        factory.a, factory.b, factory.n
    );

    let setpoints = [10.0, 30.0, 60.0, 100.0, 150.0, 200.0, 245.0];
    println!(
        "\ncollecting {} calibration points against the Promag 50…",
        setpoints.len()
    );
    let points = FieldCalibration {
        setpoints_cm_s: setpoints.to_vec(),
        settle_s: 1.0,
        average_s: 0.5,
        seed: 77,
    }
    .apply(&mut meter, 1)?;
    for p in &points {
        println!(
            "  v = {:6.1} cm/s   G = {:.4e} W/K",
            p.velocity.to_cm_per_s(),
            p.conductance.get()
        );
    }
    let cal = *meter.calibration().expect("field calibration");
    println!(
        "\nfitted: A = {:.3e}, B = {:.3e}, n = {:.3}, rms residual {:.2} %",
        cal.a,
        cal.b,
        cal.n,
        cal.rms_relative_residual(&points) * 100.0
    );

    // Power-cycle: the EEPROM record (CRC-checked) restores the calibration.
    meter.reload_calibration()?;
    assert_eq!(*meter.calibration().unwrap(), cal);
    println!(
        "EEPROM round-trip OK (slot {}, CRC verified)",
        KingCalibration::EEPROM_SLOT
    );

    println!("\nverification at untrained points:");
    for v in [45.0, 120.0, 230.0] {
        let env = SensorEnvironment {
            velocity: MetersPerSecond::from_cm_per_s(v),
            ..SensorEnvironment::still_water()
        };
        let m = meter.run(1.0, env).expect("control loop ran");
        println!(
            "  true {v:6.1} cm/s → measured {:7.2} cm/s ({:+.2} % FS)",
            m.speed.to_cm_per_s(),
            (m.speed.to_cm_per_s() - v) / 250.0 * 100.0
        );
    }
    Ok(())
}
