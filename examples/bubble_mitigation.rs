//! Bubble mitigation (paper §4, Fig. 7): a naive air-style 40 K overheat
//! grows an outgassing-bubble blanket on the heaters and corrupts the
//! measurement; the paper's pulsed drive + reduced overheat keeps the
//! surface clean.
//!
//! ```sh
//! cargo run --release --example bubble_mitigation
//! ```

use hotwire::physics::sensor::HeaterId;
use hotwire::prelude::*;

fn run_case(name: &str, config: FlowMeterConfig) -> Result<(), Box<dyn std::error::Error>> {
    let mut meter = FlowMeter::new(config, MafParams::nominal(), 5)?;
    let env = SensorEnvironment {
        velocity: MetersPerSecond::from_cm_per_s(100.0),
        ..SensorEnvironment::still_water()
    };
    println!("\n-- {name} --");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "t[s]", "coverage", "wire [°C]", "meas [cm/s]"
    );
    for window in 0..6 {
        let m = meter.run(10.0, env).expect("control loop ran");
        println!(
            "{:6.0} {:10.3} {:12.1} {:12.1}",
            (window + 1) * 10,
            meter.die().bubble_coverage(HeaterId::A),
            meter.die().heater_temperature(HeaterId::A).get(),
            m.speed.to_cm_per_s(),
        );
    }
    let detachments = meter.die().detachment_count(HeaterId::A);
    println!(
        "bubble detachment events: {detachments}; latched faults: {:?}",
        meter.fault_latch()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run_case(
        "continuous drive, 40 K overheat (naive air-style port)",
        FlowMeterConfig::air_style_overheat(),
    )?;
    run_case(
        "continuous drive, 15 K overheat (reduced for water)",
        FlowMeterConfig::water_station(),
    )?;
    run_case(
        "pulsed drive (25 % duty) + 15 K overheat — the paper's fix",
        FlowMeterConfig::water_station_pulsed(),
    )?;
    Ok(())
}
